// Randomized executor consistency: under random configurations and
// random statements, the executor's results must equal a naive
// reference evaluation, and repeated runs under different
// configurations must agree with each other (plans are semantically
// interchangeable). Updates/inserts interleave so index maintenance is
// exercised mid-stream, with B+-tree invariants checked at the end.

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/database.h"

namespace cdpd {
namespace {

class ExecutorRandomTest : public ::testing::TestWithParam<uint64_t> {};

/// Reference row store: mirrors every mutation applied to the engine.
class ReferenceTable {
 public:
  explicit ReferenceTable(const Table& table) {
    for (RowId row = 0; row < table.num_rows(); ++row) {
      rows_.push_back({table.GetValue(row, 0), table.GetValue(row, 1),
                       table.GetValue(row, 2), table.GetValue(row, 3)});
    }
  }

  std::vector<Value> Select(ColumnId select_col, ColumnId where_col,
                            Value lo, Value hi) const {
    std::vector<Value> out;
    for (const auto& row : rows_) {
      const Value v = row[static_cast<size_t>(where_col)];
      if (v >= lo && v <= hi) out.push_back(row[static_cast<size_t>(select_col)]);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  int64_t Update(ColumnId set_col, Value set_value, ColumnId where_col,
                 Value where_value) {
    int64_t affected = 0;
    for (auto& row : rows_) {
      if (row[static_cast<size_t>(where_col)] == where_value) {
        row[static_cast<size_t>(set_col)] = set_value;
        ++affected;
      }
    }
    return affected;
  }

  void Insert(const std::vector<Value>& values) {
    rows_.push_back({values[0], values[1], values[2], values[3]});
  }

 private:
  std::vector<std::array<Value, 4>> rows_;
};

TEST_P(ExecutorRandomTest, MatchesReferenceUnderRandomOpsAndConfigs) {
  const uint64_t seed = GetParam();
  auto db = Database::Create(MakePaperSchema(), 5'000, 200, seed).value();
  ReferenceTable reference(db->table());
  Rng rng(seed * 977 + 1);

  const std::vector<IndexDef> candidates =
      MakePaperCandidateIndexes(db->schema());

  for (int step = 0; step < 300; ++step) {
    // Occasionally switch to a random configuration of <= 2 indexes.
    if (step % 50 == 0) {
      std::vector<IndexDef> picked;
      for (const IndexDef& def : candidates) {
        if (rng.NextDouble() < 0.3 && picked.size() < 2) {
          picked.push_back(def);
        }
      }
      AccessStats stats;
      ASSERT_TRUE(
          db->ApplyConfiguration(Configuration(picked), &stats).ok());
    }

    AccessStats stats;
    const auto col = [&] {
      return static_cast<ColumnId>(rng.NextBounded(4));
    };
    switch (rng.NextBounded(4)) {
      case 0: {  // Point select.
        const ColumnId select_col = col();
        const ColumnId where_col = col();
        const Value v = rng.UniformInt(0, 219);  // Some out-of-domain.
        auto result = db->Execute(
            BoundStatement::SelectPoint(select_col, where_col, v), &stats);
        ASSERT_TRUE(result.ok());
        std::vector<Value> got = result->values;
        std::sort(got.begin(), got.end());
        EXPECT_EQ(got, reference.Select(select_col, where_col, v, v))
            << "step " << step;
        break;
      }
      case 1: {  // Range select.
        const ColumnId select_col = col();
        const ColumnId where_col = col();
        const Value lo = rng.UniformInt(0, 199);
        const Value hi = lo + rng.UniformInt(0, 30);
        auto result = db->Execute(
            BoundStatement::SelectRange(select_col, where_col, lo, hi),
            &stats);
        ASSERT_TRUE(result.ok());
        std::vector<Value> got = result->values;
        std::sort(got.begin(), got.end());
        EXPECT_EQ(got, reference.Select(select_col, where_col, lo, hi))
            << "step " << step;
        break;
      }
      case 2: {  // Update.
        const ColumnId set_col = col();
        const ColumnId where_col = col();
        const Value set_value = rng.UniformInt(0, 199);
        const Value where_value = rng.UniformInt(0, 199);
        auto result = db->Execute(
            BoundStatement::UpdatePoint(set_col, set_value, where_col,
                                        where_value),
            &stats);
        ASSERT_TRUE(result.ok());
        EXPECT_EQ(result->rows_affected,
                  reference.Update(set_col, set_value, where_col,
                                   where_value))
            << "step " << step;
        break;
      }
      default: {  // Insert.
        std::vector<Value> values = {
            rng.UniformInt(0, 199), rng.UniformInt(0, 199),
            rng.UniformInt(0, 199), rng.UniformInt(0, 199)};
        auto result = db->Execute(BoundStatement::Insert(values), &stats);
        ASSERT_TRUE(result.ok());
        reference.Insert(values);
        break;
      }
    }
  }

  // Every live tree is structurally sound after the random interleaving.
  for (const BTree* tree : db->catalog().ListIndexes("t")) {
    EXPECT_TRUE(tree->CheckInvariants());
    EXPECT_EQ(tree->num_entries(), db->table().num_rows());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorRandomTest,
                         ::testing::Values<uint64_t>(11, 22, 33, 44),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace cdpd
