// SQL front-end fuzzing: (a) every valid bound statement round-trips
// through print -> parse -> bind unchanged; (b) arbitrary byte soup
// and shuffled token soup never crash the lexer/parser — they return
// a Status or a legitimate parse.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sql/binder.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "workload/statement.h"

namespace cdpd {
namespace {

class SqlRoundTripFuzz : public ::testing::TestWithParam<uint64_t> {};

BoundStatement RandomStatement(Rng* rng, const Schema& schema) {
  const auto col = [&] {
    return static_cast<ColumnId>(
        rng->NextBounded(static_cast<uint64_t>(schema.num_columns())));
  };
  const auto value = [&] { return rng->UniformInt(-1'000'000, 1'000'000); };
  switch (rng->NextBounded(4)) {
    case 0:
      return BoundStatement::SelectPoint(col(), col(), value());
    case 1: {
      const Value lo = value();
      return BoundStatement::SelectRange(col(), col(), lo,
                                         lo + rng->UniformInt(0, 10'000));
    }
    case 2:
      return BoundStatement::UpdatePoint(col(), value(), col(), value());
    default: {
      std::vector<Value> values;
      for (int32_t i = 0; i < schema.num_columns(); ++i) {
        values.push_back(value());
      }
      return BoundStatement::Insert(std::move(values));
    }
  }
}

TEST_P(SqlRoundTripFuzz, BoundStatementsSurvivePrintParseBind) {
  const Schema schema = MakePaperSchema();
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    const BoundStatement original = RandomStatement(&rng, schema);
    const std::string sql = original.ToString(schema);
    auto ast = ParseStatement(sql);
    ASSERT_TRUE(ast.ok()) << sql << " -> " << ast.status();
    auto bound = BindStatement(schema, ast.value());
    ASSERT_TRUE(bound.ok()) << sql << " -> " << bound.status();
    EXPECT_EQ(*bound, original) << sql;
  }
}

TEST_P(SqlRoundTripFuzz, ByteSoupNeverCrashes) {
  Rng rng(GetParam() ^ 0xf00d);
  const std::string alphabet =
      "SELECTUPDAINRTOVWHBFMXabcd0123456789 ()=,;*-\t\n_";
  for (int i = 0; i < 2000; ++i) {
    std::string soup;
    const size_t length = rng.NextBounded(60);
    for (size_t j = 0; j < length; ++j) {
      soup += alphabet[rng.NextBounded(alphabet.size())];
    }
    // Must not crash; outcome (ok or error) is irrelevant.
    auto result = ParseStatement(soup);
    if (result.ok()) {
      // Whatever parsed must print back to something parseable.
      EXPECT_TRUE(ParseStatement(AstToString(result.value())).ok());
    }
  }
}

TEST_P(SqlRoundTripFuzz, TokenSoupNeverCrashes) {
  Rng rng(GetParam() ^ 0xbeef);
  const std::vector<std::string> tokens = {
      "SELECT", "UPDATE", "INSERT", "INTO",  "VALUES", "FROM", "WHERE",
      "SET",    "BETWEEN", "AND",   "CREATE", "DROP",  "INDEX", "ON",
      "t",      "a",      "b",      "(",     ")",      ",",    "=",
      "42",     "-7",     ";"};
  for (int i = 0; i < 2000; ++i) {
    std::string soup;
    const size_t length = rng.NextBounded(12);
    for (size_t j = 0; j < length; ++j) {
      soup += tokens[rng.NextBounded(tokens.size())];
      soup += ' ';
    }
    auto result = ParseStatement(soup);
    (void)result;
  }
}

TEST_P(SqlRoundTripFuzz, LexerHandlesArbitraryBytes) {
  Rng rng(GetParam() ^ 0xcafe);
  for (int i = 0; i < 500; ++i) {
    std::string bytes;
    const size_t length = rng.NextBounded(40);
    for (size_t j = 0; j < length; ++j) {
      bytes += static_cast<char>(rng.NextBounded(127) + 1);  // No NUL.
    }
    auto tokens = Tokenize(bytes);
    if (tokens.ok()) {
      EXPECT_EQ(tokens->back().type, TokenType::kEnd);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlRoundTripFuzz,
                         ::testing::Values<uint64_t>(1, 2, 3, 4, 5),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace cdpd
