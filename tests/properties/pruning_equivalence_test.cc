// Randomized equivalence properties of the two scaling mechanisms:
//  * dominance pruning never changes the solved cost — for every
//    optimizer method, Solve() with prune_dominated on a space padded
//    with dominated (duplicate) configurations matches Solve() without
//    pruning (the dominated configurations never win an ascending
//    argmin tie, so even the heuristics are unaffected);
//  * segment-parallel decomposition is cost-identical to the
//    monolithic k-aware DP for any chunk count and any thread count.

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/segment_solver.h"
#include "core/solver.h"
#include "test_util.h"
#include "workload/standard_workloads.h"

namespace cdpd {
namespace {

using testing_util::MakeRandomProblem;

constexpr OptimizerMethod kAllMethods[] = {
    OptimizerMethod::kOptimal, OptimizerMethod::kGreedySeq,
    OptimizerMethod::kMerging, OptimizerMethod::kRanking,
    OptimizerMethod::kHybrid,
};

/// `problem` with `extra` duplicates of member configurations
/// appended: guaranteed dominated, so prune_dominated has real work.
DesignProblem WithDuplicates(const DesignProblem& problem, size_t extra) {
  DesignProblem out = problem;
  std::vector<Configuration> configs = problem.candidates.configs();
  const size_t base = configs.size();
  for (size_t i = 0; i < extra; ++i) {
    configs.push_back(configs[1 + (i % (base - 1))]);
  }
  out.candidates = configs;
  return out;
}

TEST(PruningEquivalenceTest, AllMethodsCostIdenticalUnderPruning) {
  for (uint64_t seed : {101u, 102u, 103u}) {
    auto fixture =
        MakeRandomProblem(seed, /*num_segments=*/6, /*block_size=*/10);
    const DesignProblem problem = WithDuplicates(fixture->problem, 4);
    for (OptimizerMethod method : kAllMethods) {
      for (int64_t k : {1, 3}) {
        SolveOptions options;
        options.method = method;
        options.k = k;
        options.num_threads = 1;
        if (method == OptimizerMethod::kGreedySeq) {
          options.greedy.candidate_indexes =
              MakePaperCandidateIndexes(fixture->schema);
          options.greedy.max_indexes_per_config = 1;
        }

        auto plain = Solve(problem, options);
        ASSERT_TRUE(plain.ok()) << plain.status().ToString();

        options.prune_dominated = true;
        auto pruned = Solve(problem, options);
        ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();

        EXPECT_GT(pruned->stats.pruned_configs, 0)
            << OptimizerMethodToString(method);
        EXPECT_NEAR(pruned->schedule.total_cost, plain->schedule.total_cost,
                    1e-9 * plain->schedule.total_cost)
            << "seed=" << seed << " k=" << k << " method "
            << OptimizerMethodToString(method);
      }
    }
  }
}

TEST(PruningEquivalenceTest, PruningReportsZeroOnIrreducibleSpaces) {
  // The fixture's enumerated space has no dominated members; pruning
  // must be a no-op that still solves to the same schedule.
  auto fixture = MakeRandomProblem(104, /*num_segments=*/6,
                                   /*block_size=*/10);
  SolveOptions options;
  options.k = 2;
  options.num_threads = 1;
  auto plain = Solve(fixture->problem, options);
  options.prune_dominated = true;
  auto pruned = Solve(fixture->problem, options);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(pruned->stats.pruned_configs, 0);
  EXPECT_EQ(pruned->schedule.configs, plain->schedule.configs);
}

TEST(PruningEquivalenceTest, SegmentedSolveCostIdenticalToMonolithic) {
  for (uint64_t seed : {201u, 202u}) {
    auto fixture =
        MakeRandomProblem(seed, /*num_segments=*/18, /*block_size=*/8);
    for (int64_t k : {0, 2, 4}) {
      SolveOptions mono_options;
      mono_options.k = k;
      mono_options.num_threads = 1;
      mono_options.segmented.num_chunks = 1;
      auto mono = Solve(fixture->problem, mono_options);
      ASSERT_TRUE(mono.ok());
      for (int chunks : {2, 3, 6, 18}) {
        for (int threads : {1, 4}) {
          SolveOptions options;
          options.k = k;
          options.num_threads = threads;
          options.segmented.num_chunks = chunks;
          auto seg = Solve(fixture->problem, options);
          ASSERT_TRUE(seg.ok()) << seg.status().ToString();
          EXPECT_NEAR(seg->schedule.total_cost, mono->schedule.total_cost,
                      1e-9 * mono->schedule.total_cost)
              << "seed=" << seed << " k=" << k << " chunks=" << chunks
              << " threads=" << threads;
          // Determinism across thread counts: the identical schedule,
          // not just the identical cost.
          if (threads > 1) {
            SolveOptions serial = options;
            serial.num_threads = 1;
            auto serial_result = Solve(fixture->problem, serial);
            ASSERT_TRUE(serial_result.ok());
            EXPECT_EQ(seg->schedule.configs, serial_result->schedule.configs);
          }
        }
      }
    }
  }
}

TEST(PruningEquivalenceTest, PruningComposesWithSegmenting) {
  auto fixture = MakeRandomProblem(301, /*num_segments=*/16, /*block_size=*/8);
  const DesignProblem problem = WithDuplicates(fixture->problem, 3);
  SolveOptions baseline;
  baseline.k = 3;
  baseline.num_threads = 1;
  auto plain = Solve(problem, baseline);
  ASSERT_TRUE(plain.ok());

  SolveOptions options = baseline;
  options.prune_dominated = true;
  options.segmented.num_chunks = 4;
  auto combined = Solve(problem, options);
  ASSERT_TRUE(combined.ok());
  EXPECT_GT(combined->stats.pruned_configs, 0);
  EXPECT_EQ(combined->stats.segment_chunks, 4);
  EXPECT_NEAR(combined->schedule.total_cost, plain->schedule.total_cost,
              1e-9 * plain->schedule.total_cost);
}

}  // namespace
}  // namespace cdpd
