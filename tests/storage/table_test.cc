#include "storage/table.h"

#include <gtest/gtest.h>

#include "storage/page.h"

namespace cdpd {
namespace {

TEST(TableTest, StartsEmpty) {
  Table table(MakePaperSchema());
  EXPECT_EQ(table.num_rows(), 0);
  EXPECT_EQ(table.heap_pages(), 0);
}

TEST(TableTest, AppendRowReturnsSequentialRowIds) {
  Table table(MakePaperSchema());
  EXPECT_EQ(table.AppendRow({1, 2, 3, 4}).value(), 0);
  EXPECT_EQ(table.AppendRow({5, 6, 7, 8}).value(), 1);
  EXPECT_EQ(table.num_rows(), 2);
  EXPECT_EQ(table.GetValue(0, 0), 1);
  EXPECT_EQ(table.GetValue(1, 3), 8);
}

TEST(TableTest, AppendRowRejectsWrongArity) {
  Table table(MakePaperSchema());
  EXPECT_EQ(table.AppendRow({1, 2}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(table.num_rows(), 0);
}

TEST(TableTest, SetValueUpdatesCell) {
  Table table(MakePaperSchema());
  ASSERT_TRUE(table.AppendRow({1, 2, 3, 4}).ok());
  ASSERT_TRUE(table.SetValue(0, 2, 99).ok());
  EXPECT_EQ(table.GetValue(0, 2), 99);
}

TEST(TableTest, SetValueBoundsChecked) {
  Table table(MakePaperSchema());
  ASSERT_TRUE(table.AppendRow({1, 2, 3, 4}).ok());
  EXPECT_EQ(table.SetValue(1, 0, 5).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(table.SetValue(-1, 0, 5).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(table.SetValue(0, 4, 5).code(), StatusCode::kOutOfRange);
}

TEST(TableTest, PopulateUniformRespectsBoundsAndCount) {
  Table table(MakePaperSchema());
  Rng rng(42);
  table.PopulateUniform(1000, 0, 50, &rng);
  EXPECT_EQ(table.num_rows(), 1000);
  for (RowId row = 0; row < 1000; ++row) {
    for (ColumnId col = 0; col < 4; ++col) {
      const Value v = table.GetValue(row, col);
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 50);
    }
  }
}

TEST(TableTest, PopulateUniformIsDeterministic) {
  Table t1(MakePaperSchema());
  Table t2(MakePaperSchema());
  Rng r1(7);
  Rng r2(7);
  t1.PopulateUniform(100, 0, 1000, &r1);
  t2.PopulateUniform(100, 0, 1000, &r2);
  for (RowId row = 0; row < 100; ++row) {
    for (ColumnId col = 0; col < 4; ++col) {
      EXPECT_EQ(t1.GetValue(row, col), t2.GetValue(row, col));
    }
  }
}

TEST(TableTest, ScanVisitsEveryRowAndChargesSequentialPages) {
  Table table(MakePaperSchema());
  Rng rng(1);
  table.PopulateUniform(500, 0, 10, &rng);
  AccessStats stats;
  int64_t visited = 0;
  table.Scan(&stats, [&](RowId) { ++visited; });
  EXPECT_EQ(visited, 500);
  EXPECT_EQ(stats.sequential_pages, table.heap_pages());
  EXPECT_EQ(stats.random_pages, 0);
}

TEST(TableTest, HeapPagesMatchesPageMath) {
  Table table(MakePaperSchema());
  Rng rng(1);
  table.PopulateUniform(1000, 0, 10, &rng);
  EXPECT_EQ(table.heap_pages(),
            HeapPages(1000, MakePaperSchema().RowBytes()));
}

TEST(TableTest, ChargeRandomFetchIncrementsRandomPages) {
  Table table(MakePaperSchema());
  ASSERT_TRUE(table.AppendRow({1, 2, 3, 4}).ok());
  AccessStats stats;
  table.ChargeRandomFetch(0, &stats);
  table.ChargeRandomFetch(0, &stats);
  EXPECT_EQ(stats.random_pages, 2);
}

TEST(AccessStatsTest, AdditionAccumulates) {
  AccessStats a{1, 2, 3, 4};
  AccessStats b{10, 20, 30, 40};
  const AccessStats sum = a + b;
  EXPECT_EQ(sum.sequential_pages, 11);
  EXPECT_EQ(sum.random_pages, 22);
  EXPECT_EQ(sum.written_pages, 33);
  EXPECT_EQ(sum.rows_examined, 44);
}

TEST(AccessStatsTest, ToStringListsCounters) {
  AccessStats stats{1, 2, 3, 4};
  EXPECT_EQ(stats.ToString(), "seq=1 rand=2 written=3 rows=4");
}

}  // namespace
}  // namespace cdpd
