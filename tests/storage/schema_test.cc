#include "storage/schema.h"

#include <gtest/gtest.h>

#include "storage/page.h"

namespace cdpd {
namespace {

TEST(SchemaTest, PaperSchemaHasFourColumns) {
  const Schema schema = MakePaperSchema();
  EXPECT_EQ(schema.table_name(), "t");
  ASSERT_EQ(schema.num_columns(), 4);
  EXPECT_EQ(schema.column_name(0), "a");
  EXPECT_EQ(schema.column_name(3), "d");
}

TEST(SchemaTest, FindColumnIsCaseInsensitive) {
  const Schema schema = MakePaperSchema();
  ASSERT_TRUE(schema.FindColumn("B").ok());
  EXPECT_EQ(schema.FindColumn("B").value(), 1);
  EXPECT_EQ(schema.FindColumn("b").value(), 1);
}

TEST(SchemaTest, FindColumnUnknownIsNotFound) {
  const Schema schema = MakePaperSchema();
  EXPECT_EQ(schema.FindColumn("zz").status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, RowBytesCountsColumnsPlusHeader) {
  const Schema schema = MakePaperSchema();
  EXPECT_EQ(schema.RowBytes(), 4 * kValueBytes + kRowHeaderBytes);
}

TEST(SchemaTest, ToStringListsColumns) {
  EXPECT_EQ(MakePaperSchema().ToString(), "t(a,b,c,d)");
}

TEST(SchemaTest, CustomTableName) {
  const Schema schema = MakePaperSchema("orders");
  EXPECT_EQ(schema.table_name(), "orders");
}

TEST(SchemaTest, EqualityIsStructural) {
  EXPECT_EQ(MakePaperSchema(), MakePaperSchema());
  EXPECT_FALSE(MakePaperSchema() == MakePaperSchema("other"));
}

}  // namespace
}  // namespace cdpd
