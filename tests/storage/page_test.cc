#include "storage/page.h"

#include <gtest/gtest.h>

namespace cdpd {
namespace {

TEST(PageTest, RowsPerPageForPaperRow) {
  // 4 int64 columns + 8B header = 40 bytes/row -> 204 rows per 8 KiB page.
  EXPECT_EQ(RowsPerPage(40), 204);
}

TEST(PageTest, HeapPagesRoundsUp) {
  EXPECT_EQ(HeapPages(0, 40), 0);
  EXPECT_EQ(HeapPages(1, 40), 1);
  EXPECT_EQ(HeapPages(204, 40), 1);
  EXPECT_EQ(HeapPages(205, 40), 2);
}

TEST(PageTest, PaperTableSize) {
  // 2.5M rows of the paper's table: ~12.3k pages (~100 MB).
  const int64_t pages = HeapPages(2'500'000, 40);
  EXPECT_EQ(pages, CeilDiv(2'500'000, 204));
  EXPECT_GT(pages, 12'000);
  EXPECT_LT(pages, 12'500);
}

TEST(PageTest, IndexEntryBytes) {
  EXPECT_EQ(IndexEntryBytes(1), 16);
  EXPECT_EQ(IndexEntryBytes(2), 24);
}

TEST(PageTest, IndexEntriesPerPage) {
  EXPECT_EQ(IndexEntriesPerPage(1), 512);
  EXPECT_EQ(IndexEntriesPerPage(2), 341);
}

TEST(PageTest, IndexLeafPages) {
  EXPECT_EQ(IndexLeafPages(0, 1), 0);
  EXPECT_EQ(IndexLeafPages(512, 1), 1);
  EXPECT_EQ(IndexLeafPages(513, 1), 2);
}

TEST(PageTest, WiderIndexHasMoreLeafPages) {
  // The covering-scan advantage: a 2-column index's leaf level is
  // smaller than the heap but larger than a 1-column index's.
  const int64_t rows = 1'000'000;
  const int64_t one_col = IndexLeafPages(rows, 1);
  const int64_t two_col = IndexLeafPages(rows, 2);
  const int64_t heap = HeapPages(rows, 40);
  EXPECT_LT(one_col, two_col);
  EXPECT_LT(two_col, heap);
}

}  // namespace
}  // namespace cdpd
