#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace cdpd {
namespace {

TEST(ThreadPoolTest, DefaultThreadCountHonorsEnvironment) {
  ASSERT_EQ(setenv("CDPD_THREADS", "3", /*overwrite=*/1), 0);
  EXPECT_EQ(ThreadPool::DefaultThreadCount(), 3);
  // Unparsable and sub-1 values fall back sanely.
  ASSERT_EQ(setenv("CDPD_THREADS", "0", 1), 0);
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);
  ASSERT_EQ(setenv("CDPD_THREADS", "junk", 1), 0);
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);
  ASSERT_EQ(unsetenv("CDPD_THREADS"), 0);
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);
}

TEST(ThreadPoolTest, SubmitRunsTasks) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.num_threads(), 2);
  std::atomic<int> ran{0};
  std::atomic<bool> in_worker{false};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&] {
      if (ThreadPool::InWorkerThread()) in_worker.store(true);
      ran.fetch_add(1);
    });
  }
  // Submit gives no completion handle by design; poll with a generous
  // deadline (the pool destructor would also drain the queue).
  for (int spin = 0; spin < 5'000 && ran.load() < 16; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(ran.load(), 16);
  EXPECT_TRUE(in_worker.load());
  EXPECT_FALSE(ThreadPool::InWorkerThread());
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kCount = 10'000;
  std::vector<std::atomic<int>> hits(kCount);
  ParallelFor(&pool, 0, kCount,
              [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, HandlesEmptyAndSingletonRanges) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  ParallelFor(&pool, 5, 5, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 0);
  ParallelFor(&pool, 7, 8, [&](size_t i) {
    EXPECT_EQ(i, 7u);
    ran.fetch_add(1);
  });
  EXPECT_EQ(ran.load(), 1);
}

TEST(ParallelForTest, NullPoolRunsSerially) {
  std::vector<int> hits(100, 0);
  ParallelFor(nullptr, 0, hits.size(), [&](size_t i) { hits[i]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, PropagatesExceptionsAfterCompletion) {
  ThreadPool pool(4);
  constexpr size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  EXPECT_THROW(
      ParallelFor(&pool, 0, kCount,
                  [&](size_t i) {
                    hits[i].fetch_add(1);
                    if (i == 321) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
  // The throw aborts the rest of its own chunk, but no index runs
  // twice and the other chunks complete (most of the range is hit).
  size_t total = 0;
  for (size_t i = 0; i < kCount; ++i) {
    ASSERT_LE(hits[i].load(), 1);
    total += static_cast<size_t>(hits[i].load());
  }
  EXPECT_EQ(hits[321].load(), 1);
  EXPECT_GE(total, kCount / 2);
}

TEST(ParallelForTest, NestedCallsRunInlineWithoutDeadlock) {
  ThreadPool pool(2);
  constexpr size_t kOuter = 8;
  constexpr size_t kInner = 64;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  ParallelFor(&pool, 0, kOuter, [&](size_t outer) {
    // From inside a worker this must fall back to the inline loop; a
    // re-entrant fan-out on a 2-thread pool would deadlock.
    ParallelFor(&pool, 0, kInner, [&](size_t inner) {
      hits[outer * kInner + inner].fetch_add(1);
    });
  });
  for (size_t i = 0; i < hits.size(); ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ParallelForTest, ConcurrentParallelForsShareOnePool) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  callers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&] {
      ParallelFor(&pool, 0, 500, [&](size_t) { total.fetch_add(1); });
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(total.load(), 4 * 500);
}

}  // namespace
}  // namespace cdpd
