// The resource-accounting layer: per-component current/peak gauges,
// the soft-limit contract (TryReserve refuses and charges nothing; an
// unconditional Reserve that lands past the limit trips the monotone
// flag), the RAII reservation, the counting allocator, and the Budget
// integration that turns a tripped limit into an anytime expiry. The
// concurrency test runs under TSan in CI.

#include "common/resource_tracker.h"

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/budget.h"
#include "common/metrics.h"

namespace cdpd {
namespace {

constexpr MemComponent kA = MemComponent::kCostMatrix;
constexpr MemComponent kB = MemComponent::kKAwareTable;

TEST(ResourceTrackerTest, ReserveAndReleaseDriveCurrentAndPeak) {
  ResourceTracker tracker;
  tracker.Reserve(kA, 100);
  tracker.Reserve(kA, 50);
  EXPECT_EQ(tracker.current_bytes(kA), 150);
  EXPECT_EQ(tracker.peak_bytes(kA), 150);
  tracker.Release(kA, 120);
  EXPECT_EQ(tracker.current_bytes(kA), 30);
  EXPECT_EQ(tracker.peak_bytes(kA), 150);  // Peak never falls.
  EXPECT_EQ(tracker.current_total(), 30);
  EXPECT_EQ(tracker.peak_total(), 150);
  EXPECT_FALSE(tracker.limit_exceeded());
}

TEST(ResourceTrackerTest, TotalPeakIsConcurrentHighWaterNotSumOfPeaks) {
  ResourceTracker tracker;
  // A's 100 is released before B's 100 lands, so the two peaks never
  // coexist: per-component peaks are both 100, the total peak is 100.
  tracker.Reserve(kA, 100);
  tracker.Release(kA, 100);
  tracker.Reserve(kB, 100);
  EXPECT_EQ(tracker.peak_bytes(kA), 100);
  EXPECT_EQ(tracker.peak_bytes(kB), 100);
  EXPECT_EQ(tracker.peak_total(), 100);
}

TEST(ResourceTrackerTest, ZeroAndNegativeChargesAreIgnored) {
  ResourceTracker tracker;
  tracker.Reserve(kA, 0);
  tracker.Reserve(kA, -5);
  tracker.Release(kA, -5);
  EXPECT_EQ(tracker.current_total(), 0);
  EXPECT_EQ(tracker.peak_total(), 0);
}

TEST(ResourceTrackerTest, ReleaseUpToClampsAtCurrent) {
  ResourceTracker tracker;
  tracker.Reserve(kA, 100);
  // Releasing more than is held (entries charged to an earlier,
  // now-dead tracker, as a shared cost cache can hold) clamps instead
  // of driving the gauge negative.
  EXPECT_EQ(tracker.ReleaseUpTo(kA, 300), 100);
  EXPECT_EQ(tracker.current_bytes(kA), 0);
  EXPECT_EQ(tracker.current_total(), 0);
  EXPECT_EQ(tracker.ReleaseUpTo(kA, 10), 0);  // Nothing left to release.
  EXPECT_EQ(tracker.current_bytes(kA), 0);
  EXPECT_EQ(tracker.ReleaseUpTo(kA, -5), 0);  // Ignored like Release.
  EXPECT_EQ(tracker.peak_bytes(kA), 100);     // Peak never falls.
}

TEST(ResourceTrackerTest, ReleaseUpToNeverUntripsTheLimit) {
  ResourceTracker tracker(/*soft_limit_bytes=*/100);
  tracker.Reserve(kA, 200);
  ASSERT_TRUE(tracker.limit_exceeded());
  tracker.ReleaseUpTo(kA, 200);
  EXPECT_EQ(tracker.current_bytes(kA), 0);
  EXPECT_TRUE(tracker.limit_exceeded());  // Monotone, like Release.
}

TEST(ResourceTrackerTest, TryReserveRefusesPastTheLimitAndChargesNothing) {
  ResourceTracker tracker(/*limit_bytes=*/1000);
  EXPECT_EQ(tracker.limit_bytes(), 1000);
  EXPECT_TRUE(tracker.TryReserve(kA, 600));
  EXPECT_FALSE(tracker.limit_exceeded());
  // 600 + 500 would pass 1000: refused, nothing charged, flag tripped.
  EXPECT_FALSE(tracker.TryReserve(kB, 500));
  EXPECT_EQ(tracker.current_bytes(kB), 0);
  EXPECT_EQ(tracker.current_total(), 600);
  EXPECT_TRUE(tracker.limit_exceeded());
  // Once tripped, even a fitting reservation is refused: expiry is
  // monotone, the solve is already winding down.
  EXPECT_FALSE(tracker.TryReserve(kB, 10));
  EXPECT_EQ(tracker.current_total(), 600);
}

TEST(ResourceTrackerTest, UnconditionalReservePastTheLimitTripsTheFlag) {
  ResourceTracker tracker(/*limit_bytes=*/100);
  tracker.Reserve(kA, 150);  // Lands (the allocation already happened).
  EXPECT_EQ(tracker.current_total(), 150);
  EXPECT_TRUE(tracker.limit_exceeded());
  tracker.Release(kA, 150);
  // Releasing never un-trips the flag.
  EXPECT_TRUE(tracker.limit_exceeded());
}

TEST(ResourceTrackerTest, NoLimitMeansTryReserveAlwaysSucceeds) {
  ResourceTracker tracker;
  EXPECT_TRUE(tracker.TryReserve(kA, int64_t{1} << 60));
  EXPECT_FALSE(tracker.limit_exceeded());
}

TEST(ResourceTrackerTest, PublishToMirrorsPeaksIntoTheRegistry) {
  ResourceTracker tracker(/*limit_bytes=*/100);
  tracker.Reserve(kA, 150);
  tracker.Release(kA, 150);
  MetricsRegistry registry;
  tracker.PublishTo(&registry);
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.GaugeValue("mem.cost_matrix.peak_bytes"), 150);
  EXPECT_EQ(snapshot.GaugeValue("mem.peak_bytes_total"), 150);
  EXPECT_EQ(snapshot.CounterValue("mem.limit_exceeded"), 1);
  // Untouched components publish no gauge at all.
  EXPECT_EQ(snapshot.GaugeValue("mem.kaware_table.peak_bytes"), 0);
  tracker.PublishTo(nullptr);  // Null sink: no-op.
}

TEST(ScopedReservationTest, ReleasesOnDestruction) {
  ResourceTracker tracker;
  {
    ScopedReservation r(&tracker, kA, 256);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.bytes(), 256);
    EXPECT_EQ(tracker.current_total(), 256);
  }
  EXPECT_EQ(tracker.current_total(), 0);
  EXPECT_EQ(tracker.peak_total(), 256);
}

TEST(ScopedReservationTest, MoveTransfersTheCharge) {
  ResourceTracker tracker;
  ScopedReservation outer;
  {
    ScopedReservation inner(&tracker, kA, 100);
    outer = std::move(inner);
  }
  // The moved-from reservation released nothing; the charge lives on.
  EXPECT_EQ(tracker.current_total(), 100);
  outer = ScopedReservation();
  EXPECT_EQ(tracker.current_total(), 0);
}

TEST(ScopedReservationTest, TryRefusalIsVisibleAndChargesNothing) {
  ResourceTracker tracker(/*limit_bytes=*/100);
  ScopedReservation refused = ScopedReservation::Try(&tracker, kA, 200);
  EXPECT_FALSE(refused.ok());
  EXPECT_EQ(tracker.current_total(), 0);
  EXPECT_TRUE(tracker.limit_exceeded());
}

TEST(ScopedReservationTest, NullTrackerIsASuccessfulNoOp) {
  ScopedReservation null_scoped(nullptr, kA, 100);
  EXPECT_TRUE(null_scoped.ok());
  ScopedReservation null_try = ScopedReservation::Try(nullptr, kA, 100);
  EXPECT_TRUE(null_try.ok());
  ScopedReservation defaulted;
  EXPECT_TRUE(defaulted.ok());
}

TEST(TrackingAllocatorTest, ContainerGrowthIsChargedAndReleased) {
  ResourceTracker tracker;
  {
    std::vector<int64_t, TrackingAllocator<int64_t>> v(
        TrackingAllocator<int64_t>(&tracker, MemComponent::kRankingQueue));
    for (int i = 0; i < 1000; ++i) v.push_back(i);
    EXPECT_GE(tracker.current_bytes(MemComponent::kRankingQueue),
              static_cast<int64_t>(1000 * sizeof(int64_t)));
  }
  EXPECT_EQ(tracker.current_bytes(MemComponent::kRankingQueue), 0);
  EXPECT_GE(tracker.peak_bytes(MemComponent::kRankingQueue),
            static_cast<int64_t>(1000 * sizeof(int64_t)));
}

TEST(TrackingAllocatorTest, DefaultAllocatorCountsNothing) {
  std::vector<int64_t, TrackingAllocator<int64_t>> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 100u);  // Allocation works without a tracker.
}

TEST(ResourceTrackerTest, ConcurrentReservesSumExactly) {
  ResourceTracker tracker;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracker] {
      for (int i = 0; i < kIters; ++i) {
        tracker.Reserve(kA, 3);
        tracker.Release(kA, 1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(tracker.current_total(),
            int64_t{kThreads} * kIters * (3 - 1));
  EXPECT_GE(tracker.peak_total(), tracker.current_total());
}

TEST(BudgetMemoryTest, TrippedTrackerExpiresTheBudget) {
  ResourceTracker tracker(/*limit_bytes=*/100);
  Budget budget;
  budget.set_tracker(&tracker);
  EXPECT_FALSE(budget.Expired());
  tracker.Reserve(kA, 200);
  EXPECT_TRUE(budget.Expired());
  // Expiry stays latched even after the memory is returned.
  tracker.Release(kA, 200);
  EXPECT_TRUE(budget.Expired());
}

TEST(ProcessClockTest, CpuAndRssProbesReturnSaneValues) {
  const int64_t thread_cpu = ThreadCpuTimeMicros();
  const int64_t process_cpu = ProcessCpuTimeMicros();
  EXPECT_GE(thread_cpu, 0);
  EXPECT_GE(process_cpu, 0);
  // Clocks are monotone.
  EXPECT_GE(ThreadCpuTimeMicros(), thread_cpu);
  EXPECT_GE(ProcessCpuTimeMicros(), process_cpu);
#if defined(__linux__)
  EXPECT_GT(CurrentRssBytes(), 0);
  EXPECT_GT(PeakRssBytes(), 0);
  EXPECT_GE(PeakRssBytes(), CurrentRssBytes() / 2);  // Same order.
#endif
}

TEST(ProcessClockTest, SampleProcessMemoryPublishesGauges) {
  MetricsRegistry registry;
  SampleProcessMemory(&registry);
  SampleProcessMemory(nullptr);  // Null sink: no-op.
#if defined(__linux__)
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_GT(snapshot.GaugeValue("process.rss_bytes"), 0);
  EXPECT_GE(snapshot.GaugeValue("process.rss_peak_bytes"),
            snapshot.GaugeValue("process.rss_bytes"));
#endif
}

}  // namespace
}  // namespace cdpd
