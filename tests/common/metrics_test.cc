#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/solve_stats.h"

namespace cdpd {
namespace {

TEST(MetricsTest, CounterStartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42);
}

TEST(MetricsTest, GaugeSetAndUpdateMax) {
  Gauge gauge;
  gauge.Set(7);
  EXPECT_EQ(gauge.Value(), 7);
  gauge.UpdateMax(3);  // Lower: no effect.
  EXPECT_EQ(gauge.Value(), 7);
  gauge.UpdateMax(11);
  EXPECT_EQ(gauge.Value(), 11);
  gauge.Set(2);  // Set is last-write-wins, even downward.
  EXPECT_EQ(gauge.Value(), 2);
}

TEST(MetricsTest, GaugeUpdateMaxTracksNegativePeaks) {
  // A fresh gauge is unset, not zero: the first recorded peak wins
  // even when it is negative (a zero-initialized gauge would silently
  // swallow it).
  Gauge gauge;
  gauge.UpdateMax(-5);
  EXPECT_EQ(gauge.Value(), -5);
  gauge.UpdateMax(-9);  // Lower peak: no effect.
  EXPECT_EQ(gauge.Value(), -5);
  gauge.UpdateMax(-2);
  EXPECT_EQ(gauge.Value(), -2);
  // Never-touched gauges still read as 0 in snapshots.
  Gauge untouched;
  EXPECT_EQ(untouched.Value(), 0);
}

TEST(MetricsTest, HistogramExactFieldsAndBucketedPercentiles) {
  Histogram histogram;
  // 100 values 1..100: count/sum/min/max are exact, percentiles come
  // from log2 buckets so only order-of-magnitude bounds hold.
  double sum = 0.0;
  for (int i = 1; i <= 100; ++i) {
    histogram.Record(static_cast<double>(i));
    sum += i;
  }
  const HistogramStats stats = histogram.Snapshot();
  EXPECT_EQ(stats.count, 100);
  EXPECT_DOUBLE_EQ(stats.sum, sum);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 100.0);
  // True p50 = 50 lives in bucket (32, 64]; p95/p99 in (64, 128].
  EXPECT_GE(stats.p50, 32.0);
  EXPECT_LE(stats.p50, 64.0);
  EXPECT_GE(stats.p95, 64.0);
  EXPECT_LE(stats.p95, 128.0);
  EXPECT_GE(stats.p99, 64.0);
  EXPECT_LE(stats.p99, 128.0);
  EXPECT_LE(stats.p50, stats.p95);
  EXPECT_LE(stats.p95, stats.p99);
}

TEST(MetricsTest, EmptyHistogramSnapshotIsZeroed) {
  Histogram histogram;
  const HistogramStats stats = histogram.Snapshot();
  EXPECT_EQ(stats.count, 0);
  EXPECT_DOUBLE_EQ(stats.sum, 0.0);
  EXPECT_DOUBLE_EQ(stats.min, 0.0);
  EXPECT_DOUBLE_EQ(stats.max, 0.0);
  EXPECT_DOUBLE_EQ(stats.p50, 0.0);
}

TEST(MetricsTest, SingleSampleHistogramCollapsesToThatSample) {
  Histogram histogram;
  histogram.Record(42.0);
  const HistogramStats stats = histogram.Snapshot();
  EXPECT_EQ(stats.count, 1);
  EXPECT_DOUBLE_EQ(stats.sum, 42.0);
  EXPECT_DOUBLE_EQ(stats.min, 42.0);
  EXPECT_DOUBLE_EQ(stats.max, 42.0);
  // Bucketed estimates are clamped to [min, max], so every percentile
  // of a single sample is exactly that sample.
  EXPECT_DOUBLE_EQ(stats.p50, 42.0);
  EXPECT_DOUBLE_EQ(stats.p95, 42.0);
  EXPECT_DOUBLE_EQ(stats.p99, 42.0);
}

TEST(MetricsTest, AllEqualSamplesReportTheConstant) {
  Histogram histogram;
  for (int i = 0; i < 1'000; ++i) histogram.Record(7.0);
  const HistogramStats stats = histogram.Snapshot();
  EXPECT_EQ(stats.count, 1'000);
  EXPECT_DOUBLE_EQ(stats.p50, 7.0);
  EXPECT_DOUBLE_EQ(stats.p95, 7.0);
  EXPECT_DOUBLE_EQ(stats.p99, 7.0);
  EXPECT_DOUBLE_EQ(stats.min, 7.0);
  EXPECT_DOUBLE_EQ(stats.max, 7.0);
}

TEST(MetricsTest, GaugeAddTreatsUnsetAsZero) {
  Gauge gauge;
  gauge.Add(5);  // Unset sentinel must read as 0, not INT64_MIN.
  EXPECT_EQ(gauge.Value(), 5);
  gauge.Add(-2);
  EXPECT_EQ(gauge.Value(), 3);
  gauge.Add(-3);
  EXPECT_EQ(gauge.Value(), 0);
  Gauge seeded;
  seeded.Set(10);
  seeded.Add(1);
  EXPECT_EQ(seeded.Value(), 11);
}

TEST(MetricsTest, HistogramExemplarTracksLastTaggedSample) {
  Histogram histogram;
  histogram.Record(5.0);  // Untagged: no exemplar.
  EXPECT_TRUE(histogram.Snapshot().exemplar_id.empty());
  histogram.Record(9.0, "req-1");
  histogram.Record(2.0, "req-2");
  const HistogramStats stats = histogram.Snapshot();
  EXPECT_EQ(stats.exemplar_id, "req-2");
  EXPECT_DOUBLE_EQ(stats.exemplar_value, 2.0);
  EXPECT_EQ(stats.count, 3);
}

TEST(MetricsTest, PrometheusMetricNameSanitizesTheAlphabet) {
  EXPECT_EQ(PrometheusMetricName("server.request_us"), "server_request_us");
  EXPECT_EQ(PrometheusMetricName("cost_cache.hits"), "cost_cache_hits");
  EXPECT_EQ(PrometheusMetricName("a-b/c d"), "a_b_c_d");
  EXPECT_EQ(PrometheusMetricName("ns:metric"), "ns:metric");  // Colons ok.
  EXPECT_EQ(PrometheusMetricName("9lives"), "_9lives");  // No leading digit.
  EXPECT_EQ(PrometheusMetricName(""), "_");
}

TEST(MetricsTest, ToPrometheusRendersEveryKind) {
  MetricsRegistry registry;
  registry.counter("server.requests")->Add(3);
  registry.gauge("server.inflight_requests")->Set(1);
  Histogram* latency = registry.histogram("server.request_us");
  for (int i = 0; i < 10; ++i) latency->Record(100.0, "req-x");
  const std::string text = registry.Snapshot().ToPrometheus();
  EXPECT_NE(text.find("# TYPE server_requests counter\n"), std::string::npos);
  EXPECT_NE(text.find("server_requests 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE server_inflight_requests gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("server_inflight_requests 1\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE server_request_us summary\n"),
            std::string::npos);
  EXPECT_NE(text.find("server_request_us{quantile=\"0.5\"} 100\n"),
            std::string::npos);
  EXPECT_NE(text.find("server_request_us{quantile=\"0.95\"} 100\n"),
            std::string::npos);
  EXPECT_NE(text.find("server_request_us{quantile=\"0.99\"} 100\n"),
            std::string::npos);
  EXPECT_NE(text.find("server_request_us_sum 1000\n"), std::string::npos);
  EXPECT_NE(text.find("server_request_us_count 10\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE server_request_us_min gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE server_request_us_max gauge\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("# exemplar server_request_us request_id=\"req-x\" value="),
      std::string::npos);
}

TEST(MetricsTest, ToPrometheusDisambiguatesCollidingSanitizedNames) {
  MetricsRegistry registry;
  // Distinct registry names, one sanitized Prometheus name.
  registry.counter("op.stats")->Add(1);
  registry.counter("op_stats")->Add(2);
  const std::string text = registry.Snapshot().ToPrometheus();
  EXPECT_NE(text.find("# TYPE op_stats counter\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE op_stats_2 counter\n"), std::string::npos);
  // Exactly one bare "op_stats <value>" sample line.
  size_t bare = 0;
  for (size_t pos = 0; (pos = text.find("\nop_stats ", pos)) !=
                       std::string::npos;
       ++pos) {
    ++bare;
  }
  EXPECT_EQ(bare, 1u);
}

TEST(MetricsTest, ToPrometheusReservesSummarySumAndCountSeries) {
  MetricsRegistry registry;
  // A counter whose sanitized name equals the summary's _sum series:
  // the summary must move aside as a whole (its three series share a
  // base), leaving exactly one sample per series name.
  registry.counter("server.request_us_sum")->Add(7);
  registry.histogram("server.request_us")->Record(100.0);
  const std::string text = registry.Snapshot().ToPrometheus();
  EXPECT_NE(text.find("# TYPE server_request_us_sum counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("server_request_us_sum 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE server_request_us_2 summary\n"),
            std::string::npos);
  EXPECT_NE(text.find("server_request_us_2_sum 100\n"), std::string::npos);
  EXPECT_NE(text.find("server_request_us_2_count 1\n"), std::string::npos);
  // Exactly one "server_request_us_sum <value>" sample line.
  size_t sum_samples = 0;
  for (size_t pos = 0;
       (pos = text.find("\nserver_request_us_sum ", pos)) !=
       std::string::npos;
       ++pos) {
    ++sum_samples;
  }
  EXPECT_EQ(sum_samples, 1u);
}

TEST(MetricsTest, RegistryIsIdempotentWithStablePointers) {
  MetricsRegistry registry;
  Counter* c1 = registry.counter("solver.costings");
  Counter* c2 = registry.counter("solver.costings");
  EXPECT_EQ(c1, c2);
  EXPECT_NE(c1, registry.counter("cost_cache.hits"));
  EXPECT_EQ(registry.gauge("pool.threads"), registry.gauge("pool.threads"));
  EXPECT_EQ(registry.histogram("whatif.cost_us"),
            registry.histogram("whatif.cost_us"));
  // Counter / gauge / histogram namespaces are independent.
  c1->Add(5);
  registry.gauge("solver.costings")->Set(9);
  EXPECT_EQ(c1->Value(), 5);
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("solver.costings"), 5);
  EXPECT_EQ(snapshot.GaugeValue("solver.costings"), 9);
}

TEST(MetricsTest, SnapshotReturnsZeroForAbsentNames) {
  MetricsRegistry registry;
  registry.counter("present")->Add(1);
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("absent"), 0);
  EXPECT_EQ(snapshot.GaugeValue("absent"), 0);
  EXPECT_EQ(snapshot.CounterValue("present"), 1);
}

TEST(MetricsTest, SnapshotJsonAndTextContainMetricNames) {
  MetricsRegistry registry;
  registry.counter("solver.costings")->Add(3);
  registry.gauge("pool.threads")->Set(8);
  registry.histogram("whatif.cost_us")->Record(12.0);
  const MetricsSnapshot snapshot = registry.Snapshot();
  const std::string json = snapshot.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("solver.costings"), std::string::npos);
  EXPECT_NE(json.find("pool.threads"), std::string::npos);
  EXPECT_NE(json.find("whatif.cost_us"), std::string::npos);
  const std::string text = snapshot.ToText();
  EXPECT_NE(text.find("solver.costings"), std::string::npos);
  EXPECT_NE(text.find("whatif.cost_us"), std::string::npos);
}

TEST(MetricsTest, GlobalRegistryIsASingleton) {
  ASSERT_NE(MetricsRegistry::Global(), nullptr);
  EXPECT_EQ(MetricsRegistry::Global(), MetricsRegistry::Global());
}

TEST(MetricsTest, SolveStatsRoundTripsThroughRegistry) {
  SolveStats stats;
  stats.wall_seconds = 0.25;
  stats.costings = 1200;
  stats.cost_cache_hits = 340;
  stats.cost_cache_misses = 12;
  stats.cost_cache_evictions = 2;
  stats.threads_used = 8;
  stats.nodes_expanded = 77;
  stats.relaxations = 13;
  stats.paths_enumerated = 5;
  stats.merge_steps = 4;
  stats.candidate_evaluations = 9;

  MetricsRegistry registry;
  stats.PublishTo(&registry);
  stats.PublishTo(nullptr);  // Null registry must be a no-op, not a crash.

  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("solver.solves"), 1);
  const SolveStats back = SolveStats::FromSnapshot(snapshot);
  EXPECT_NEAR(back.wall_seconds, stats.wall_seconds, 1e-6);
  EXPECT_EQ(back.costings, stats.costings);
  EXPECT_EQ(back.cost_cache_hits, stats.cost_cache_hits);
  EXPECT_EQ(back.cost_cache_misses, stats.cost_cache_misses);
  EXPECT_EQ(back.cost_cache_evictions, stats.cost_cache_evictions);
  EXPECT_EQ(back.threads_used, stats.threads_used);
  EXPECT_EQ(back.nodes_expanded, stats.nodes_expanded);
  EXPECT_EQ(back.relaxations, stats.relaxations);
  EXPECT_EQ(back.paths_enumerated, stats.paths_enumerated);
  EXPECT_EQ(back.merge_steps, stats.merge_steps);
  EXPECT_EQ(back.candidate_evaluations, stats.candidate_evaluations);
}

// The TSan target: many threads hammer the same named metrics through
// the registry (mixing registration races with hot-path updates) while
// another set of threads snapshots concurrently. Totals must be exact.
TEST(MetricsConcurrencyTest, ParallelUpdatesAndSnapshotsAreExact) {
  constexpr int kThreads = 8;
  constexpr int kIterations = 10'000;
  MetricsRegistry registry;
  std::vector<std::thread> workers;
  workers.reserve(kThreads + 2);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, t] {
      for (int i = 0; i < kIterations; ++i) {
        // Re-register by name every iteration: exercises the
        // idempotent-registration lock against concurrent lookups.
        registry.counter("shared.counter")->Add(1);
        registry.gauge("shared.gauge")->UpdateMax(t * kIterations + i);
        // Add +1/-1 pairs must cancel exactly whatever the interleaving
        // (the inflight-requests pattern).
        registry.gauge("shared.inflight")->Add(1);
        registry.histogram("shared.histogram")
            ->Record(static_cast<double>(i % 1'000), "req");
        registry.gauge("shared.inflight")->Add(-1);
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    workers.emplace_back([&registry] {
      for (int i = 0; i < 100; ++i) {
        const MetricsSnapshot snapshot = registry.Snapshot();
        // Monotone, never torn beyond the running total.
        EXPECT_GE(snapshot.CounterValue("shared.counter"), 0);
        EXPECT_LE(snapshot.CounterValue("shared.counter"),
                  int64_t{kThreads} * kIterations);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("shared.counter"),
            int64_t{kThreads} * kIterations);
  EXPECT_EQ(snapshot.GaugeValue("shared.gauge"),
            int64_t{kThreads - 1} * kIterations + (kIterations - 1));
  const HistogramStats histogram = snapshot.histograms.at("shared.histogram");
  EXPECT_EQ(histogram.count, int64_t{kThreads} * kIterations);
  EXPECT_DOUBLE_EQ(histogram.min, 0.0);
  EXPECT_DOUBLE_EQ(histogram.max, 999.0);
  EXPECT_EQ(histogram.exemplar_id, "req");
  EXPECT_EQ(snapshot.GaugeValue("shared.inflight"), 0);
}

}  // namespace
}  // namespace cdpd
