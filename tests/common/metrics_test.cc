#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/solve_stats.h"

namespace cdpd {
namespace {

TEST(MetricsTest, CounterStartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42);
}

TEST(MetricsTest, GaugeSetAndUpdateMax) {
  Gauge gauge;
  gauge.Set(7);
  EXPECT_EQ(gauge.Value(), 7);
  gauge.UpdateMax(3);  // Lower: no effect.
  EXPECT_EQ(gauge.Value(), 7);
  gauge.UpdateMax(11);
  EXPECT_EQ(gauge.Value(), 11);
  gauge.Set(2);  // Set is last-write-wins, even downward.
  EXPECT_EQ(gauge.Value(), 2);
}

TEST(MetricsTest, GaugeUpdateMaxTracksNegativePeaks) {
  // A fresh gauge is unset, not zero: the first recorded peak wins
  // even when it is negative (a zero-initialized gauge would silently
  // swallow it).
  Gauge gauge;
  gauge.UpdateMax(-5);
  EXPECT_EQ(gauge.Value(), -5);
  gauge.UpdateMax(-9);  // Lower peak: no effect.
  EXPECT_EQ(gauge.Value(), -5);
  gauge.UpdateMax(-2);
  EXPECT_EQ(gauge.Value(), -2);
  // Never-touched gauges still read as 0 in snapshots.
  Gauge untouched;
  EXPECT_EQ(untouched.Value(), 0);
}

TEST(MetricsTest, HistogramExactFieldsAndBucketedPercentiles) {
  Histogram histogram;
  // 100 values 1..100: count/sum/min/max are exact, percentiles come
  // from log2 buckets so only order-of-magnitude bounds hold.
  double sum = 0.0;
  for (int i = 1; i <= 100; ++i) {
    histogram.Record(static_cast<double>(i));
    sum += i;
  }
  const HistogramStats stats = histogram.Snapshot();
  EXPECT_EQ(stats.count, 100);
  EXPECT_DOUBLE_EQ(stats.sum, sum);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 100.0);
  // True p50 = 50 lives in bucket (32, 64]; p95/p99 in (64, 128].
  EXPECT_GE(stats.p50, 32.0);
  EXPECT_LE(stats.p50, 64.0);
  EXPECT_GE(stats.p95, 64.0);
  EXPECT_LE(stats.p95, 128.0);
  EXPECT_GE(stats.p99, 64.0);
  EXPECT_LE(stats.p99, 128.0);
  EXPECT_LE(stats.p50, stats.p95);
  EXPECT_LE(stats.p95, stats.p99);
}

TEST(MetricsTest, EmptyHistogramSnapshotIsZeroed) {
  Histogram histogram;
  const HistogramStats stats = histogram.Snapshot();
  EXPECT_EQ(stats.count, 0);
  EXPECT_DOUBLE_EQ(stats.sum, 0.0);
  EXPECT_DOUBLE_EQ(stats.min, 0.0);
  EXPECT_DOUBLE_EQ(stats.max, 0.0);
  EXPECT_DOUBLE_EQ(stats.p50, 0.0);
}

TEST(MetricsTest, RegistryIsIdempotentWithStablePointers) {
  MetricsRegistry registry;
  Counter* c1 = registry.counter("solver.costings");
  Counter* c2 = registry.counter("solver.costings");
  EXPECT_EQ(c1, c2);
  EXPECT_NE(c1, registry.counter("cost_cache.hits"));
  EXPECT_EQ(registry.gauge("pool.threads"), registry.gauge("pool.threads"));
  EXPECT_EQ(registry.histogram("whatif.cost_us"),
            registry.histogram("whatif.cost_us"));
  // Counter / gauge / histogram namespaces are independent.
  c1->Add(5);
  registry.gauge("solver.costings")->Set(9);
  EXPECT_EQ(c1->Value(), 5);
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("solver.costings"), 5);
  EXPECT_EQ(snapshot.GaugeValue("solver.costings"), 9);
}

TEST(MetricsTest, SnapshotReturnsZeroForAbsentNames) {
  MetricsRegistry registry;
  registry.counter("present")->Add(1);
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("absent"), 0);
  EXPECT_EQ(snapshot.GaugeValue("absent"), 0);
  EXPECT_EQ(snapshot.CounterValue("present"), 1);
}

TEST(MetricsTest, SnapshotJsonAndTextContainMetricNames) {
  MetricsRegistry registry;
  registry.counter("solver.costings")->Add(3);
  registry.gauge("pool.threads")->Set(8);
  registry.histogram("whatif.cost_us")->Record(12.0);
  const MetricsSnapshot snapshot = registry.Snapshot();
  const std::string json = snapshot.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("solver.costings"), std::string::npos);
  EXPECT_NE(json.find("pool.threads"), std::string::npos);
  EXPECT_NE(json.find("whatif.cost_us"), std::string::npos);
  const std::string text = snapshot.ToText();
  EXPECT_NE(text.find("solver.costings"), std::string::npos);
  EXPECT_NE(text.find("whatif.cost_us"), std::string::npos);
}

TEST(MetricsTest, GlobalRegistryIsASingleton) {
  ASSERT_NE(MetricsRegistry::Global(), nullptr);
  EXPECT_EQ(MetricsRegistry::Global(), MetricsRegistry::Global());
}

TEST(MetricsTest, SolveStatsRoundTripsThroughRegistry) {
  SolveStats stats;
  stats.wall_seconds = 0.25;
  stats.costings = 1200;
  stats.cost_cache_hits = 340;
  stats.cost_cache_misses = 12;
  stats.cost_cache_evictions = 2;
  stats.threads_used = 8;
  stats.nodes_expanded = 77;
  stats.relaxations = 13;
  stats.paths_enumerated = 5;
  stats.merge_steps = 4;
  stats.candidate_evaluations = 9;

  MetricsRegistry registry;
  stats.PublishTo(&registry);
  stats.PublishTo(nullptr);  // Null registry must be a no-op, not a crash.

  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("solver.solves"), 1);
  const SolveStats back = SolveStats::FromSnapshot(snapshot);
  EXPECT_NEAR(back.wall_seconds, stats.wall_seconds, 1e-6);
  EXPECT_EQ(back.costings, stats.costings);
  EXPECT_EQ(back.cost_cache_hits, stats.cost_cache_hits);
  EXPECT_EQ(back.cost_cache_misses, stats.cost_cache_misses);
  EXPECT_EQ(back.cost_cache_evictions, stats.cost_cache_evictions);
  EXPECT_EQ(back.threads_used, stats.threads_used);
  EXPECT_EQ(back.nodes_expanded, stats.nodes_expanded);
  EXPECT_EQ(back.relaxations, stats.relaxations);
  EXPECT_EQ(back.paths_enumerated, stats.paths_enumerated);
  EXPECT_EQ(back.merge_steps, stats.merge_steps);
  EXPECT_EQ(back.candidate_evaluations, stats.candidate_evaluations);
}

// The TSan target: many threads hammer the same named metrics through
// the registry (mixing registration races with hot-path updates) while
// another set of threads snapshots concurrently. Totals must be exact.
TEST(MetricsConcurrencyTest, ParallelUpdatesAndSnapshotsAreExact) {
  constexpr int kThreads = 8;
  constexpr int kIterations = 10'000;
  MetricsRegistry registry;
  std::vector<std::thread> workers;
  workers.reserve(kThreads + 2);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, t] {
      for (int i = 0; i < kIterations; ++i) {
        // Re-register by name every iteration: exercises the
        // idempotent-registration lock against concurrent lookups.
        registry.counter("shared.counter")->Add(1);
        registry.gauge("shared.gauge")->UpdateMax(t * kIterations + i);
        registry.histogram("shared.histogram")
            ->Record(static_cast<double>(i % 1'000));
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    workers.emplace_back([&registry] {
      for (int i = 0; i < 100; ++i) {
        const MetricsSnapshot snapshot = registry.Snapshot();
        // Monotone, never torn beyond the running total.
        EXPECT_GE(snapshot.CounterValue("shared.counter"), 0);
        EXPECT_LE(snapshot.CounterValue("shared.counter"),
                  int64_t{kThreads} * kIterations);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("shared.counter"),
            int64_t{kThreads} * kIterations);
  EXPECT_EQ(snapshot.GaugeValue("shared.gauge"),
            int64_t{kThreads - 1} * kIterations + (kIterations - 1));
  const HistogramStats histogram = snapshot.histograms.at("shared.histogram");
  EXPECT_EQ(histogram.count, int64_t{kThreads} * kIterations);
  EXPECT_DOUBLE_EQ(histogram.min, 0.0);
  EXPECT_DOUBLE_EQ(histogram.max, 999.0);
}

}  // namespace
}  // namespace cdpd
