#include "common/string_util.h"

#include <gtest/gtest.h>

namespace cdpd {
namespace {

TEST(StringUtilTest, JoinEmpty) { EXPECT_EQ(Join({}, ","), ""); }

TEST(StringUtilTest, JoinSingle) { EXPECT_EQ(Join({"a"}, ","), "a"); }

TEST(StringUtilTest, JoinMany) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringUtilTest, SplitBasic) {
  const std::vector<std::string> parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  const std::vector<std::string> parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, SplitEmptyStringYieldsOneEmptyField) {
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StringUtilTest, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("SeLeCt * FROM T"), "select * from t");
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

TEST(StringUtilTest, FormatPercent) {
  EXPECT_EQ(FormatPercent(0.143), "14.3%");
  EXPECT_EQ(FormatPercent(1.0, 0), "100%");
  EXPECT_EQ(FormatPercent(0.005, 1), "0.5%");
}

}  // namespace
}  // namespace cdpd
