#include "common/math_util.h"

#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

namespace cdpd {
namespace {

constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
constexpr int64_t kMin = std::numeric_limits<int64_t>::min();

TEST(MathUtilTest, CheckedMulInRange) {
  int64_t out = 0;
  EXPECT_TRUE(CheckedMul(1'000'000, 1'000'000, &out));
  EXPECT_EQ(out, 1'000'000'000'000);
  EXPECT_TRUE(CheckedMul(kMax, 1, &out));
  EXPECT_EQ(out, kMax);
  EXPECT_TRUE(CheckedMul(0, kMax, &out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(CheckedMul(-3, 4, &out));
  EXPECT_EQ(out, -12);
}

TEST(MathUtilTest, CheckedMulOverflow) {
  int64_t out = 0;
  EXPECT_FALSE(CheckedMul(kMax, 2, &out));
  EXPECT_FALSE(CheckedMul(int64_t{1} << 32, int64_t{1} << 32, &out));
  EXPECT_FALSE(CheckedMul(kMin, -1, &out));
}

TEST(MathUtilTest, CheckedAddInRangeAndOverflow) {
  int64_t out = 0;
  EXPECT_TRUE(CheckedAdd(kMax - 1, 1, &out));
  EXPECT_EQ(out, kMax);
  EXPECT_FALSE(CheckedAdd(kMax, 1, &out));
  EXPECT_FALSE(CheckedAdd(kMin, -1, &out));
}

TEST(MathUtilTest, SaturatingMulClampsAtMax) {
  EXPECT_EQ(SaturatingMul(3, 7), 21);
  EXPECT_EQ(SaturatingMul(kMax, 2), kMax);
  EXPECT_EQ(SaturatingMul(kMax, kMax), kMax);
  EXPECT_EQ(SaturatingMul(kMax, 0), 0);
}

TEST(MathUtilTest, SaturatingAddClampsAtMax) {
  EXPECT_EQ(SaturatingAdd(3, 7), 10);
  EXPECT_EQ(SaturatingAdd(kMax, 1), kMax);
  EXPECT_EQ(SaturatingAdd(kMax, kMax), kMax);
}

TEST(MathUtilTest, CeilDivExact) { EXPECT_EQ(CeilDiv(10, 5), 2); }

TEST(MathUtilTest, CeilDivRoundsUp) {
  EXPECT_EQ(CeilDiv(11, 5), 3);
  EXPECT_EQ(CeilDiv(1, 5), 1);
  EXPECT_EQ(CeilDiv(0, 5), 0);
}

TEST(MathUtilTest, TreeHeightSingleLeaf) {
  EXPECT_EQ(TreeHeight(1, 100), 1);
  EXPECT_EQ(TreeHeight(0, 100), 1);
}

TEST(MathUtilTest, TreeHeightTwoLevels) {
  EXPECT_EQ(TreeHeight(2, 100), 2);
  EXPECT_EQ(TreeHeight(100, 100), 2);
}

TEST(MathUtilTest, TreeHeightThreeLevels) {
  EXPECT_EQ(TreeHeight(101, 100), 3);
  EXPECT_EQ(TreeHeight(10'000, 100), 3);
  EXPECT_EQ(TreeHeight(10'001, 100), 4);
}

TEST(MathUtilTest, Log2) {
  EXPECT_DOUBLE_EQ(Log2(1.0), 0.0);
  EXPECT_DOUBLE_EQ(Log2(0.5), 0.0);  // Clamped below 1.
  EXPECT_DOUBLE_EQ(Log2(8.0), 3.0);
}

TEST(MathUtilTest, BinomialCoefficientSmall) {
  EXPECT_DOUBLE_EQ(BinomialCoefficient(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(5, 0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(5, 5), 1.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(5, 6), 0.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(5, -1), 0.0);
}

TEST(MathUtilTest, BinomialCoefficientSymmetry) {
  EXPECT_DOUBLE_EQ(BinomialCoefficient(20, 7), BinomialCoefficient(20, 13));
}

}  // namespace
}  // namespace cdpd
