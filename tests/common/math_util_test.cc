#include "common/math_util.h"

#include <gtest/gtest.h>

namespace cdpd {
namespace {

TEST(MathUtilTest, CeilDivExact) { EXPECT_EQ(CeilDiv(10, 5), 2); }

TEST(MathUtilTest, CeilDivRoundsUp) {
  EXPECT_EQ(CeilDiv(11, 5), 3);
  EXPECT_EQ(CeilDiv(1, 5), 1);
  EXPECT_EQ(CeilDiv(0, 5), 0);
}

TEST(MathUtilTest, TreeHeightSingleLeaf) {
  EXPECT_EQ(TreeHeight(1, 100), 1);
  EXPECT_EQ(TreeHeight(0, 100), 1);
}

TEST(MathUtilTest, TreeHeightTwoLevels) {
  EXPECT_EQ(TreeHeight(2, 100), 2);
  EXPECT_EQ(TreeHeight(100, 100), 2);
}

TEST(MathUtilTest, TreeHeightThreeLevels) {
  EXPECT_EQ(TreeHeight(101, 100), 3);
  EXPECT_EQ(TreeHeight(10'000, 100), 3);
  EXPECT_EQ(TreeHeight(10'001, 100), 4);
}

TEST(MathUtilTest, Log2) {
  EXPECT_DOUBLE_EQ(Log2(1.0), 0.0);
  EXPECT_DOUBLE_EQ(Log2(0.5), 0.0);  // Clamped below 1.
  EXPECT_DOUBLE_EQ(Log2(8.0), 3.0);
}

TEST(MathUtilTest, BinomialCoefficientSmall) {
  EXPECT_DOUBLE_EQ(BinomialCoefficient(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(5, 0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(5, 5), 1.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(5, 6), 0.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(5, -1), 0.0);
}

TEST(MathUtilTest, BinomialCoefficientSymmetry) {
  EXPECT_DOUBLE_EQ(BinomialCoefficient(20, 7), BinomialCoefficient(20, 13));
}

}  // namespace
}  // namespace cdpd
