#include "common/status.h"

#include <sstream>

#include <gtest/gtest.h>

namespace cdpd {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "Ok");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
  EXPECT_FALSE(Status::InvalidArgument("bad").ok());
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("no table 't'").ToString(),
            "NotFound: no table 't'");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, StreamInsertionUsesToString) {
  std::ostringstream os;
  os << Status::Internal("boom");
  EXPECT_EQ(os.str(), "Internal: boom");
}

TEST(StatusTest, StatusCodeToStringCoversAllCodes) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "Ok");
  EXPECT_EQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "ResourceExhausted");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = [] { return Status::NotFound("inner"); };
  auto outer = [&]() -> Status {
    CDPD_RETURN_IF_ERROR(fails());
    return Status::Internal("unreachable");
  };
  EXPECT_EQ(outer().code(), StatusCode::kNotFound);
}

TEST(StatusTest, ReturnIfErrorPassesThroughOnOk) {
  auto succeeds = [] { return Status::OK(); };
  auto outer = [&]() -> Status {
    CDPD_RETURN_IF_ERROR(succeeds());
    return Status::Internal("reached");
  };
  EXPECT_EQ(outer().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace cdpd
