#include "common/tracing.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace cdpd {
namespace {

TEST(TracingTest, NullTracerSpansAreNoOps) {
  // Must not crash, allocate buffers, or record anything.
  TraceSpan outer(nullptr, "outer");
  outer.set_arg(7);
  { CDPD_TRACE_SPAN(nullptr, "inner", "test", 3); }
}

TEST(TracingTest, RecordsSpanOnlyWhenItEnds) {
  Tracer tracer;
  {
    TraceSpan span(&tracer, "work", "test");
    EXPECT_EQ(tracer.num_events(), 0u);  // Still open.
  }
  ASSERT_EQ(tracer.num_events(), 1u);
  const Tracer::Event event = tracer.Events()[0];
  EXPECT_STREQ(event.name, "work");
  EXPECT_STREQ(event.category, "test");
  EXPECT_EQ(event.arg, Tracer::kNoArg);
  EXPECT_EQ(event.depth, 0);
  EXPECT_GE(event.start_us, 0);
  EXPECT_GE(event.duration_us, 0);
}

TEST(TracingTest, NestedSpansRecordDepthsAndContainment) {
  Tracer tracer;
  {
    TraceSpan outer(&tracer, "outer", "test");
    {
      TraceSpan middle(&tracer, "middle", "test");
      { CDPD_TRACE_SPAN(&tracer, "leaf", "test"); }
    }
  }
  // After the stack unwinds, a sibling at the original depth.
  { TraceSpan sibling(&tracer, "sibling", "test"); }
  const std::vector<Tracer::Event> events = tracer.Events();
  ASSERT_EQ(events.size(), 4u);
  // Sub-microsecond spans can tie on (start, duration), so find by
  // name rather than relying on positional order.
  auto find = [&events](const char* name) {
    for (const Tracer::Event& event : events) {
      if (std::strcmp(event.name, name) == 0) return event;
    }
    ADD_FAILURE() << "missing span " << name;
    return Tracer::Event{};
  };
  EXPECT_EQ(find("outer").depth, 0);
  EXPECT_EQ(find("middle").depth, 1);
  EXPECT_EQ(find("leaf").depth, 2);
  EXPECT_EQ(find("sibling").depth, 0);  // Stack unwound fully.
  for (const Tracer::Event& event : events) EXPECT_EQ(event.tid, 0u);
  // Children start no earlier and end no later than their parent.
  const Tracer::Event outer = find("outer");
  const Tracer::Event leaf = find("leaf");
  EXPECT_LE(outer.start_us, leaf.start_us);
  EXPECT_LE(leaf.start_us + leaf.duration_us,
            outer.start_us + outer.duration_us);
}

TEST(TracingTest, SetArgOverridesConstructionArg) {
  Tracer tracer;
  {
    TraceSpan span(&tracer, "count", "test", 1);
    span.set_arg(123);  // Count known only at scope exit.
  }
  { CDPD_TRACE_SPAN(&tracer, "fixed", "test", 45); }
  const std::vector<Tracer::Event> events = tracer.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].arg, 123);
  EXPECT_EQ(events[1].arg, 45);
}

TEST(TracingTest, ChromeJsonExportRoundTrips) {
  Tracer tracer;
  {
    TraceSpan outer(&tracer, "solver.optimal", "solver", 8);
    { CDPD_TRACE_SPAN(&tracer, "whatif.precompute", "whatif"); }
  }
  const std::string json = tracer.ToChromeJson();
  // The envelope and fields chrome://tracing / Perfetto require.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("solver.optimal"), std::string::npos);
  EXPECT_NE(json.find("whatif.precompute"), std::string::npos);
  EXPECT_NE(json.find("\"dur\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\""), std::string::npos);
  // Balanced braces/brackets — a cheap structural validity check (the
  // CI job runs the full `python3 -m json.tool` validation).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(TracingTest, TextTreeIndentsChildren) {
  Tracer tracer;
  {
    TraceSpan outer(&tracer, "parent", "test");
    {
      // Make the child ~1ms long so the parent strictly outlasts it;
      // two 0us spans would tie in the (start, -duration) ordering.
      CDPD_TRACE_SPAN(&tracer, "child", "test");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  const std::string tree = tracer.ToTextTree();
  const size_t parent_at = tree.find("parent");
  const size_t child_at = tree.find("child");
  ASSERT_NE(parent_at, std::string::npos);
  ASSERT_NE(child_at, std::string::npos);
  EXPECT_LT(parent_at, child_at);  // Parent listed before its child.
}

TEST(TracingTest, EmptyTracerExportsCleanly) {
  Tracer tracer;
  EXPECT_EQ(tracer.num_events(), 0u);
  EXPECT_NE(tracer.ToChromeJson().find("\"traceEvents\""),
            std::string::npos);
  tracer.ToTextTree();  // Must not crash.
}

// The TSan target: spans open and close on many threads while other
// threads export concurrently; every fully-ended span must be counted
// exactly once, with a dense tid per recording thread.
TEST(TracingConcurrencyTest, ParallelSpansAndConcurrentExport) {
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 2'000;
  Tracer tracer;
  std::vector<std::thread> workers;
  workers.reserve(kThreads + 2);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&tracer] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan outer(&tracer, "outer", "test", i);
        CDPD_TRACE_SPAN(&tracer, "inner", "test");
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    workers.emplace_back([&tracer] {
      for (int i = 0; i < 50; ++i) {
        // Export while tracing is in flight: sees only ended spans.
        EXPECT_LE(tracer.Events().size(),
                  size_t{kThreads} * kSpansPerThread * 2);
        tracer.ToChromeJson();
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  const std::vector<Tracer::Event> events = tracer.Events();
  ASSERT_EQ(events.size(), size_t{kThreads} * kSpansPerThread * 2);
  std::vector<int64_t> outers_per_tid(kThreads, 0);
  for (const Tracer::Event& event : events) {
    ASSERT_LT(event.tid, static_cast<uint32_t>(kThreads));
    if (std::strcmp(event.name, "outer") == 0) {
      ++outers_per_tid[event.tid];
      EXPECT_EQ(event.depth, 0);
    } else {
      EXPECT_EQ(event.depth, 1);
    }
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(outers_per_tid[t], kSpansPerThread) << "tid " << t;
  }
}

TEST(TracerTest, EventsToJsonRendersFlatSpanObjects) {
  Tracer tracer;
  {
    CDPD_TRACE_SPAN(&tracer, "request.solve", "server");
    CDPD_TRACE_SPAN(&tracer, "kaware.dp", "solver", 42);
  }
  const std::string json = tracer.ToJsonSpans();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"request.solve\""), std::string::npos);
  EXPECT_NE(json.find("\"category\": \"server\""), std::string::npos);
  EXPECT_NE(json.find("\"kaware.dp\""), std::string::npos);
  EXPECT_NE(json.find("\"arg\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"depth\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"duration_us\""), std::string::npos);
  // kNoArg spans omit the arg key entirely.
  const size_t solve = json.find("\"request.solve\"");
  const size_t solve_end = json.find('}', solve);
  EXPECT_EQ(json.substr(solve, solve_end - solve).find("\"arg\""),
            std::string::npos);
  EXPECT_EQ(Tracer::EventsToJson({}), "[]");
}

}  // namespace
}  // namespace cdpd
