#include "common/rng.h"

#include <map>

#include <gtest/gtest.h>

namespace cdpd {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedCoversAllResidues) {
  Rng rng(9);
  std::map<uint64_t, int> seen;
  for (int i = 0; i < 5'000; ++i) ++seen[rng.NextBounded(5)];
  EXPECT_EQ(seen.size(), 5u);
  for (const auto& [value, count] : seen) {
    EXPECT_GT(count, 700) << "residue " << value << " badly underrepresented";
  }
}

TEST(RngTest, UniformIntIsInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(13);
  EXPECT_EQ(rng.UniformInt(42, 42), 42);
}

TEST(RngTest, NextDoubleInHalfOpenUnitInterval) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(RngTest, PickWeightedRespectsWeights) {
  Rng rng(23);
  const std::vector<double> weights = {0.55, 0.25, 0.10, 0.10};
  std::vector<int> counts(4, 0);
  const int trials = 40'000;
  for (int i = 0; i < trials; ++i) {
    ++counts[rng.PickWeighted(weights)];
  }
  for (size_t i = 0; i < weights.size(); ++i) {
    const double freq = static_cast<double>(counts[i]) / trials;
    EXPECT_NEAR(freq, weights[i], 0.02) << "bucket " << i;
  }
}

TEST(RngTest, PickWeightedHandlesZeroWeightBuckets) {
  Rng rng(29);
  const std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.PickWeighted(weights), 1u);
  }
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(31);
  Rng b = a.Split();
  // The split stream should not replay the parent stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace cdpd
