#include "common/budget.h"

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

namespace cdpd {
namespace {

TEST(BudgetTest, DefaultBudgetNeverExpires) {
  Budget unlimited;
  EXPECT_FALSE(unlimited.Expired());
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_FALSE(unlimited.Expired());
}

TEST(BudgetTest, ZeroTimeoutExpiresImmediately) {
  Budget zero(std::chrono::nanoseconds(0));
  EXPECT_TRUE(zero.Expired());
  Budget negative(std::chrono::nanoseconds(-1));
  EXPECT_TRUE(negative.Expired());
}

TEST(BudgetTest, GenerousTimeoutNotYetExpired) {
  Budget roomy(std::chrono::minutes(10));
  EXPECT_FALSE(roomy.Expired());
}

TEST(BudgetTest, ShortTimeoutEventuallyExpires) {
  Budget brief(std::chrono::milliseconds(2));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(brief.Expired());
}

TEST(BudgetTest, CancelTokenFlipsBudget) {
  CancelToken token;
  Budget budget(&token);
  EXPECT_FALSE(budget.Expired());
  token.Cancel();
  EXPECT_TRUE(budget.Expired());
  // Cancelling twice is fine; expiry is sticky until Reset.
  token.Cancel();
  EXPECT_TRUE(budget.Expired());
  token.Reset();
  EXPECT_FALSE(budget.Expired());
}

TEST(BudgetTest, DeadlineAndTokenCombine) {
  CancelToken token;
  Budget budget(std::chrono::minutes(10), &token);
  EXPECT_FALSE(budget.Expired());
  token.Cancel();
  EXPECT_TRUE(budget.Expired());
}

TEST(BudgetTest, CancelFromAnotherThreadIsObserved) {
  CancelToken token;
  Budget budget(&token);
  std::thread canceller([&token] { token.Cancel(); });
  canceller.join();
  EXPECT_TRUE(budget.Expired());
  EXPECT_TRUE(token.cancelled());
}

TEST(BudgetTest, NullBudgetIsUnlimited) {
  EXPECT_FALSE(BudgetExpired(nullptr));
  Budget zero(std::chrono::nanoseconds(0));
  EXPECT_TRUE(BudgetExpired(&zero));
}

}  // namespace
}  // namespace cdpd
