// The structured JSONL logger: event rendering, level filtering, the
// CDPD_LOG null/level short-circuit, drain semantics, and thread
// safety under concurrent logging (the TSan preset includes these
// tests via the "Logger" name filter).

#include "common/log.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace cdpd {
namespace {

TEST(LoggerTest, RendersStructuredFieldsInOrder) {
  Logger logger(LogLevel::kDebug);
  logger.Log(LogLevel::kInfo, "solve.start",
             {LogField("method", "optimal"), LogField("k", int64_t{2}),
              LogField("fraction", 0.5), LogField("hit", true)});
  ASSERT_EQ(logger.num_events(), 1u);
  const std::string line = logger.ToJsonl();
  // Fixed prefix then fields in call order.
  EXPECT_NE(line.find("\"level\":\"info\""), std::string::npos);
  EXPECT_NE(line.find("\"event\":\"solve.start\""), std::string::npos);
  EXPECT_NE(line.find("\"method\":\"optimal\",\"k\":2,\"fraction\":0.5,"
                      "\"hit\":true"),
            std::string::npos);
  EXPECT_EQ(line.back(), '\n');
}

TEST(LoggerTest, EscapesJsonSignificantCharacters) {
  Logger logger;
  logger.Log(LogLevel::kInfo, "event",
             {LogField("path", "a\"b\\c\nd")});
  const std::string line = logger.ToJsonl();
  EXPECT_NE(line.find("a\\\"b\\\\c\\nd"), std::string::npos);
}

TEST(LoggerTest, MinimumLevelFiltersEvents) {
  Logger logger(LogLevel::kWarn);
  EXPECT_FALSE(logger.enabled(LogLevel::kDebug));
  EXPECT_FALSE(logger.enabled(LogLevel::kInfo));
  EXPECT_TRUE(logger.enabled(LogLevel::kWarn));
  EXPECT_TRUE(logger.enabled(LogLevel::kError));
  logger.Log(LogLevel::kInfo, "dropped");
  logger.Log(LogLevel::kError, "kept");
  EXPECT_EQ(logger.num_events(), 1u);
  EXPECT_NE(logger.ToJsonl().find("\"kept\""), std::string::npos);
}

TEST(LoggerTest, CdpdLogMacroToleratesNullAndRespectsLevel) {
  Logger* null_logger = nullptr;
  // Must compile and be a no-op: the disabled path is one pointer test.
  CDPD_LOG(null_logger, LogLevel::kInfo, "ignored", LogField("k", 1));

  Logger logger(LogLevel::kWarn);
  CDPD_LOG(&logger, LogLevel::kInfo, "below.level", LogField("k", 1));
  EXPECT_EQ(logger.num_events(), 0u);
  CDPD_LOG(&logger, LogLevel::kError, "recorded", LogField("k", 1));
  EXPECT_EQ(logger.num_events(), 1u);
}

TEST(LoggerTest, TakeLinesDrainsTheBuffer) {
  Logger logger;
  logger.Log(LogLevel::kInfo, "one");
  logger.Log(LogLevel::kInfo, "two");
  std::vector<std::string> lines = logger.TakeLines();
  EXPECT_EQ(lines.size(), 2u);
  EXPECT_EQ(logger.num_events(), 0u);
  EXPECT_TRUE(logger.ToJsonl().empty());
  logger.Log(LogLevel::kInfo, "three");
  EXPECT_EQ(logger.num_events(), 1u);
}

TEST(LogContextTest, StampsEveryLineOnThisThreadWhileAlive) {
  Logger logger(LogLevel::kDebug);
  logger.Log(LogLevel::kInfo, "before");
  {
    LogContext ctx("request_id", "req-42");
    logger.Log(LogLevel::kInfo, "during", {LogField("k", 1)});
    {
      LogContext inner("op", "recommend");  // Contexts nest.
      logger.Log(LogLevel::kInfo, "nested");
    }
    logger.Log(LogLevel::kInfo, "after.inner");
  }
  logger.Log(LogLevel::kInfo, "after");

  const std::vector<std::string> lines = logger.TakeLines();
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_EQ(lines[0].find("request_id"), std::string::npos);
  // Context fields sit between the fixed prefix and the call's fields.
  EXPECT_NE(lines[1].find("\"event\":\"during\",\"request_id\":\"req-42\","
                          "\"k\":1"),
            std::string::npos)
      << lines[1];
  EXPECT_NE(lines[2].find("\"request_id\":\"req-42\",\"op\":\"recommend\""),
            std::string::npos)
      << lines[2];
  EXPECT_NE(lines[3].find("\"request_id\":\"req-42\""), std::string::npos);
  EXPECT_EQ(lines[3].find("\"op\""), std::string::npos);
  EXPECT_EQ(lines[4].find("request_id"), std::string::npos);
}

TEST(LogContextTest, DoesNotLeakAcrossThreads) {
  Logger logger(LogLevel::kDebug);
  LogContext ctx("request_id", "main-thread-only");
  std::thread other([&logger] {
    logger.Log(LogLevel::kInfo, "from.other.thread");
  });
  other.join();
  const std::string line = logger.ToJsonl();
  EXPECT_EQ(line.find("main-thread-only"), std::string::npos) << line;
}

TEST(LoggerTest, ConcurrentLoggingKeepsEveryLineIntact) {
  // 8 threads x 200 events; every line must be a complete JSON object
  // on its own line (no interleaving), and all 1600 must arrive. Run
  // under TSan this also proves the logger's locking discipline.
  Logger logger(LogLevel::kDebug);
  constexpr int kThreads = 8;
  constexpr int kEvents = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&logger, t] {
      for (int i = 0; i < kEvents; ++i) {
        CDPD_LOG(&logger, LogLevel::kInfo, "worker.event",
                 LogField("worker", t), LogField("i", i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(logger.num_events(), static_cast<size_t>(kThreads * kEvents));
  const std::vector<std::string> lines = logger.TakeLines();
  ASSERT_EQ(lines.size(), static_cast<size_t>(kThreads * kEvents));
  for (const std::string& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.find('\n'), std::string::npos);
    EXPECT_NE(line.find("\"event\":\"worker.event\""), std::string::npos);
  }
}

}  // namespace
}  // namespace cdpd
