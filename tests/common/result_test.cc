#include "common/result.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace cdpd {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.status().message(), "missing");
}

TEST(ResultTest, ValueOrReturnsFallbackOnError) {
  Result<int> error(Status::Internal("x"));
  EXPECT_EQ(error.value_or(7), 7);
  Result<int> good(3);
  EXPECT_EQ(good.value_or(7), 3);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(5));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> extracted = std::move(result).value();
  EXPECT_EQ(*extracted, 5);
}

TEST(ResultTest, ArrowOperatorReachesMembers) {
  Result<std::string> result(std::string("hello"));
  EXPECT_EQ(result->size(), 5u);
}

TEST(ResultTest, AssignOrReturnExtractsValue) {
  auto inner = []() -> Result<int> { return 10; };
  auto outer = [&]() -> Result<int> {
    CDPD_ASSIGN_OR_RETURN(int v, inner());
    return v * 2;
  };
  ASSERT_TRUE(outer().ok());
  EXPECT_EQ(outer().value(), 20);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto inner = []() -> Result<int> { return Status::OutOfRange("bad"); };
  auto outer = [&]() -> Result<int> {
    CDPD_ASSIGN_OR_RETURN(int v, inner());
    return v * 2;
  };
  EXPECT_EQ(outer().status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, CopyableResultCopies) {
  Result<std::string> a(std::string("abc"));
  Result<std::string> b = a;
  EXPECT_EQ(b.value(), "abc");
  EXPECT_EQ(a.value(), "abc");
}

}  // namespace
}  // namespace cdpd
