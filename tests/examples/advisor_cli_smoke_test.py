#!/usr/bin/env python3
"""Smoke tests for advisor_cli's argument handling.

Runs the built binary (path in $CDPD_ADVISOR_CLI, wired up by
tests/CMakeLists.txt via $<TARGET_FILE:advisor_cli>) and asserts on
exit codes and diagnostics only — every case here must be rejected
before any solving starts, so the whole suite is milliseconds.

Pins the flag-parsing contract: --help exits 0 with the usage text;
unknown flags, duplicated flags, malformed or missing values (both the
`--flag value` and `--flag=value` spellings), and stray positional
arguments all print a diagnostic plus the usage and exit 2.
"""

import os
import subprocess
import sys
import unittest

CLI = os.environ.get("CDPD_ADVISOR_CLI")


@unittest.skipIf(not CLI or not os.path.exists(CLI),
                 "CDPD_ADVISOR_CLI not set or binary missing")
class AdvisorCliSmokeTest(unittest.TestCase):
    def run_cli(self, *args):
        return subprocess.run([CLI, *args], capture_output=True, text=True,
                              timeout=60)

    def assert_usage_error(self, result, *needles):
        self.assertEqual(result.returncode, 2, result.stderr)
        self.assertIn("usage: advisor_cli", result.stderr)
        for needle in needles:
            self.assertIn(needle, result.stderr)

    def test_help_exits_zero_with_usage(self):
        result = self.run_cli("--help")
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("usage: advisor_cli", result.stdout)
        self.assertIn("--memory-limit-bytes", result.stdout)

    def test_unknown_flag_fails_with_usage(self):
        self.assert_usage_error(self.run_cli("--frobnicate"),
                                "unknown flag --frobnicate")

    def test_duplicate_flag_fails(self):
        self.assert_usage_error(self.run_cli("--k", "1", "--k", "2"),
                                "duplicate flag --k")

    def test_duplicate_flag_across_spellings_fails(self):
        self.assert_usage_error(
            self.run_cli("--segments", "4", "--segments=8"),
            "duplicate flag --segments")

    def test_malformed_segments_value_fails(self):
        self.assert_usage_error(self.run_cli("--segments=abc"),
                                "needs an integer", "'abc'")

    def test_empty_segments_value_fails(self):
        self.assert_usage_error(self.run_cli("--segments="),
                                "needs a non-empty value")

    def test_trailing_garbage_integer_fails(self):
        # atoll would have silently read this as 25.
        self.assert_usage_error(self.run_cli("--rows", "25O000"),
                                "needs an integer")

    def test_missing_value_fails(self):
        self.assert_usage_error(self.run_cli("--deadline-ms"),
                                "needs a value")

    def test_value_on_boolean_flag_fails(self):
        self.assert_usage_error(self.run_cli("--prune=yes"),
                                "takes no value")

    def test_second_positional_fails(self):
        self.assert_usage_error(self.run_cli("a.sql", "b.sql"),
                                "unexpected positional argument 'b.sql'")

    def test_negative_block_fails(self):
        self.assert_usage_error(self.run_cli("--block", "-3"))


if __name__ == "__main__":
    unittest.main()
