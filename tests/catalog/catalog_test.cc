#include "catalog/catalog.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace cdpd {
namespace {

class CatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Table* table = catalog_.CreateTable(MakePaperSchema()).value();
    Rng rng(3);
    table->PopulateUniform(2000, 0, 100, &rng);
  }
  Catalog catalog_;
  IndexDef a_ = IndexDef({0});
};

TEST_F(CatalogTest, CreateTableRejectsDuplicateName) {
  EXPECT_EQ(catalog_.CreateTable(MakePaperSchema()).status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(CatalogTest, GetTableByName) {
  ASSERT_TRUE(catalog_.GetTable("t").ok());
  EXPECT_EQ(catalog_.GetTable("t").value()->num_rows(), 2000);
  EXPECT_EQ(catalog_.GetTable("missing").status().code(),
            StatusCode::kNotFound);
}

TEST_F(CatalogTest, CreateIndexMaterializesTree) {
  AccessStats stats;
  ASSERT_TRUE(catalog_.CreateIndex("t", a_, &stats).ok());
  ASSERT_TRUE(catalog_.GetIndex("t", a_).ok());
  EXPECT_EQ(catalog_.GetIndex("t", a_).value()->num_entries(), 2000);
  EXPECT_GT(stats.sequential_pages, 0);
}

TEST_F(CatalogTest, CreateIndexTwiceIsAlreadyExists) {
  AccessStats stats;
  ASSERT_TRUE(catalog_.CreateIndex("t", a_, &stats).ok());
  EXPECT_EQ(catalog_.CreateIndex("t", a_, &stats).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(CatalogTest, CreateIndexOnMissingTable) {
  AccessStats stats;
  EXPECT_EQ(catalog_.CreateIndex("x", a_, &stats).code(),
            StatusCode::kNotFound);
}

TEST_F(CatalogTest, DropIndexRemovesIt) {
  AccessStats stats;
  ASSERT_TRUE(catalog_.CreateIndex("t", a_, &stats).ok());
  ASSERT_TRUE(catalog_.DropIndex("t", a_, &stats).ok());
  EXPECT_EQ(catalog_.GetIndex("t", a_).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog_.DropIndex("t", a_, &stats).code(), StatusCode::kNotFound);
}

TEST_F(CatalogTest, ListIndexesReturnsAllTrees) {
  AccessStats stats;
  ASSERT_TRUE(catalog_.CreateIndex("t", a_, &stats).ok());
  ASSERT_TRUE(catalog_.CreateIndex("t", IndexDef({2, 3}), &stats).ok());
  EXPECT_EQ(catalog_.ListIndexes("t").size(), 2u);
  EXPECT_TRUE(catalog_.ListIndexes("missing").empty());
}

TEST_F(CatalogTest, CurrentConfigurationMirrorsIndexes) {
  EXPECT_TRUE(catalog_.CurrentConfiguration("t").empty());
  AccessStats stats;
  ASSERT_TRUE(catalog_.CreateIndex("t", a_, &stats).ok());
  const Configuration config = catalog_.CurrentConfiguration("t");
  EXPECT_EQ(config.num_indexes(), 1);
  EXPECT_TRUE(config.Contains(a_));
  ASSERT_TRUE(catalog_.DropIndex("t", a_, &stats).ok());
  EXPECT_TRUE(catalog_.CurrentConfiguration("t").empty());
}

TEST_F(CatalogTest, CurrentConfigurationOfUnknownTableIsEmpty) {
  EXPECT_TRUE(catalog_.CurrentConfiguration("nope").empty());
}

}  // namespace
}  // namespace cdpd
