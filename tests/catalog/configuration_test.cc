#include "catalog/configuration.h"

#include <gtest/gtest.h>

namespace cdpd {
namespace {

class ConfigurationTest : public ::testing::Test {
 protected:
  Schema schema_ = MakePaperSchema();
  IndexDef a_ = IndexDef({0});
  IndexDef b_ = IndexDef({1});
  IndexDef ab_ = IndexDef({0, 1});
};

TEST_F(ConfigurationTest, EmptyConfiguration) {
  const Configuration empty = Configuration::Empty();
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.num_indexes(), 0);
  EXPECT_EQ(empty.SizePages(1'000'000), 0);
  EXPECT_EQ(empty.ToString(schema_), "{}");
}

TEST_F(ConfigurationTest, CanonicalizesOrderAndDuplicates) {
  const Configuration c1({b_, a_, a_});
  const Configuration c2({a_, b_});
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(c1.num_indexes(), 2);
}

TEST_F(ConfigurationTest, ContainsAndWithWithout) {
  Configuration c({a_});
  EXPECT_TRUE(c.Contains(a_));
  EXPECT_FALSE(c.Contains(b_));
  const Configuration grown = c.With(b_);
  EXPECT_TRUE(grown.Contains(b_));
  EXPECT_EQ(grown.num_indexes(), 2);
  EXPECT_EQ(c.With(a_), c);  // No-op.
  EXPECT_EQ(grown.Without(b_), c);
  EXPECT_EQ(c.Without(b_), c);  // No-op.
}

TEST_F(ConfigurationTest, SizeSumsIndexSizes) {
  const Configuration c({a_, ab_});
  EXPECT_EQ(c.SizePages(100'000),
            a_.SizePages(100'000) + ab_.SizePages(100'000));
}

TEST_F(ConfigurationTest, ToStringListsIndexes) {
  const Configuration c({ab_, a_});
  EXPECT_EQ(c.ToString(schema_), "{I(a), I(a,b)}");
}

TEST_F(ConfigurationTest, HashConsistentWithEquality) {
  const Configuration c1({b_, a_});
  const Configuration c2({a_, b_});
  EXPECT_EQ(ConfigurationHash{}(c1), ConfigurationHash{}(c2));
}

TEST_F(ConfigurationTest, OrderingIsTotal) {
  const Configuration empty;
  const Configuration c({a_});
  EXPECT_TRUE(empty < c || c < empty || empty == c);
  EXPECT_FALSE(c < c);
}

TEST_F(ConfigurationTest, DiffComputesCreatedAndDropped) {
  const Configuration from({a_, b_});
  const Configuration to({b_, ab_});
  const ConfigurationDelta delta = DiffConfigurations(from, to);
  ASSERT_EQ(delta.created.size(), 1u);
  EXPECT_EQ(delta.created[0], ab_);
  ASSERT_EQ(delta.dropped.size(), 1u);
  EXPECT_EQ(delta.dropped[0], a_);
}

TEST_F(ConfigurationTest, DiffOfEqualConfigsIsEmpty) {
  const Configuration c({a_, b_});
  const ConfigurationDelta delta = DiffConfigurations(c, c);
  EXPECT_TRUE(delta.created.empty());
  EXPECT_TRUE(delta.dropped.empty());
}

TEST_F(ConfigurationTest, DiffFromEmptyCreatesEverything) {
  const Configuration to({a_, b_});
  const ConfigurationDelta delta = DiffConfigurations(Configuration(), to);
  EXPECT_EQ(delta.created.size(), 2u);
  EXPECT_TRUE(delta.dropped.empty());
}

}  // namespace
}  // namespace cdpd
