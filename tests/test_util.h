#ifndef CDPD_TESTS_TEST_UTIL_H_
#define CDPD_TESTS_TEST_UTIL_H_

#include <memory>
#include <vector>

#include "advisor/config_enumeration.h"
#include "common/rng.h"
#include "core/design_problem.h"
#include "cost/cost_model.h"
#include "cost/what_if.h"
#include "index/index_def.h"
#include "storage/schema.h"
#include "workload/generator.h"
#include "workload/query_mix.h"
#include "workload/workload.h"

namespace cdpd {
namespace testing_util {

/// Value domain used by the small test fixtures.
inline constexpr int64_t kTestDomain = 1000;

/// A self-contained design-problem fixture over the paper's 4-column
/// schema: owns the cost model, workload, segments, what-if oracle and
/// problem so tests can pass `fixture.problem` straight to optimizers.
struct ProblemFixture {
  Schema schema;
  std::unique_ptr<CostModel> model;
  std::vector<BoundStatement> statements;
  std::vector<Segment> segments;
  std::unique_ptr<WhatIfEngine> what_if;
  DesignProblem problem;
};

/// Builds a fixture with `num_segments` segments of `block_size`
/// random point statements (plus the occasional update), over a table
/// of `num_rows` rows, with all configurations of at most
/// `max_indexes_per_config` indexes drawn from `candidate_indexes`
/// (defaults to the paper's six candidates).
inline std::unique_ptr<ProblemFixture> MakeRandomProblem(
    uint64_t seed, size_t num_segments, size_t block_size,
    int32_t max_indexes_per_config = 1, int64_t num_rows = 100'000,
    double update_fraction = 0.1) {
  auto fixture = std::make_unique<ProblemFixture>();
  fixture->schema = MakePaperSchema();
  fixture->model = std::make_unique<CostModel>(fixture->schema, num_rows,
                                               kTestDomain);

  Rng rng(seed);
  WorkloadGenerator generator(fixture->schema, kTestDomain, rng.Next());
  const std::vector<QueryMix> mixes = MakePaperQueryMixes();
  std::vector<int> blocks;
  for (size_t i = 0; i < num_segments; ++i) {
    blocks.push_back(static_cast<int>(rng.NextBounded(mixes.size())));
  }
  DmlMixOptions dml;
  dml.update_fraction = update_fraction;
  Workload workload =
      generator.GenerateBlocked(mixes, blocks, block_size, dml).value();
  fixture->statements = std::move(workload.statements);
  fixture->segments = SegmentFixed(fixture->statements.size(), block_size);

  fixture->what_if = std::make_unique<WhatIfEngine>(
      fixture->model.get(), fixture->statements, fixture->segments);

  ConfigEnumOptions enum_options;
  enum_options.max_indexes_per_config = max_indexes_per_config;
  enum_options.num_rows = num_rows;
  fixture->problem.what_if = fixture->what_if.get();
  fixture->problem.candidates =
      EnumerateConfigurations(MakePaperCandidateIndexes(fixture->schema),
                              enum_options)
          .value();
  fixture->problem.initial = Configuration::Empty();
  return fixture;
}

/// Shorthand for an index over named columns of `schema`.
inline IndexDef MakeIndex(const Schema& schema,
                          const std::vector<std::string>& columns) {
  return IndexDef::FromColumnNames(schema, columns).value();
}

}  // namespace testing_util
}  // namespace cdpd

#endif  // CDPD_TESTS_TEST_UTIL_H_
