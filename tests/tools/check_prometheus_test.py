#!/usr/bin/env python3
"""Unit tests for tools/check_prometheus.py.

Each test writes an exposition fixture to a tempdir and runs the
checker as a subprocess, exactly the way CI gates advisor_server's
GET /metrics output: valid counter/gauge/summary expositions pass,
samples without a TYPE, non-numeric values, duplicate declarations,
and quantile labels on non-summaries fail, and the --require /
--require-prefix presence flags gate independently.

Registered with ctest as `check_prometheus_test` (see
tests/CMakeLists.txt).
"""

import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      os.pardir, os.pardir, "tools", "check_prometheus.py")

VALID = """\
# TYPE server_requests counter
server_requests 42
# TYPE server_inflight_requests gauge
server_inflight_requests 0
# TYPE server_request_us summary
server_request_us{quantile="0.5"} 120
server_request_us{quantile="0.95"} 340
server_request_us{quantile="0.99"} 560.5
server_request_us_sum 12345.6
server_request_us_count 42
# TYPE server_request_us_min gauge
server_request_us_min 80
# exemplar server_request_us request_id="req-1" value=560.5
"""


class CheckPrometheusTest(unittest.TestCase):
    def run_checker(self, text, *flags):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "metrics.txt")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
            return subprocess.run(
                [sys.executable, SCRIPT, path, *flags],
                capture_output=True, text=True)

    def test_valid_exposition_passes(self):
        result = self.run_checker(VALID)
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_stdin_is_accepted(self):
        result = subprocess.run([sys.executable, SCRIPT, "-"],
                                input=VALID, capture_output=True, text=True)
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_sample_without_type_fails(self):
        result = self.run_checker("orphan_metric 1\n")
        self.assertEqual(result.returncode, 1)
        self.assertIn("no preceding TYPE", result.stderr)

    def test_non_numeric_value_fails(self):
        result = self.run_checker(
            "# TYPE m counter\nm not-a-number\n")
        self.assertEqual(result.returncode, 1)
        self.assertIn("not a number", result.stderr)

    def test_special_float_values_pass(self):
        text = ("# TYPE m gauge\nm +Inf\n"
                "# TYPE n gauge\nn NaN\n")
        self.assertEqual(self.run_checker(text).returncode, 0)

    def test_duplicate_type_declaration_fails(self):
        text = ("# TYPE m counter\nm 1\n"
                "# TYPE m counter\nm 2\n")
        result = self.run_checker(text)
        self.assertEqual(result.returncode, 1)
        self.assertIn("declared twice", result.stderr)

    def test_bad_metric_name_fails(self):
        result = self.run_checker("# TYPE 9bad counter\n9bad 1\n")
        self.assertEqual(result.returncode, 1)

    def test_quantile_on_counter_fails(self):
        text = '# TYPE m counter\nm{quantile="0.5"} 1\n'
        result = self.run_checker(text)
        self.assertEqual(result.returncode, 1)
        self.assertIn("quantile", result.stderr)

    def test_summary_sum_count_belong_to_family(self):
        text = ("# TYPE lat summary\n"
                'lat{quantile="0.5"} 1\nlat_sum 10\nlat_count 3\n')
        self.assertEqual(self.run_checker(text).returncode, 0)

    def test_require_present_and_missing(self):
        ok = self.run_checker(VALID, "--require", "server_requests")
        self.assertEqual(ok.returncode, 0, ok.stderr)
        missing = self.run_checker(VALID, "--require", "no_such_family")
        self.assertEqual(missing.returncode, 1)
        self.assertIn("no_such_family", missing.stderr)

    def test_require_rejects_declared_but_unsampled_family(self):
        text = VALID + "# TYPE ghost counter\n"
        result = self.run_checker(text, "--require", "ghost")
        self.assertEqual(result.returncode, 1)
        self.assertIn("no samples", result.stderr)

    def test_require_prefix(self):
        ok = self.run_checker(VALID, "--require-prefix", "server_")
        self.assertEqual(ok.returncode, 0, ok.stderr)
        missing = self.run_checker(VALID, "--require-prefix", "cost_cache_")
        self.assertEqual(missing.returncode, 1)
        self.assertIn("cost_cache_", missing.stderr)

    def test_require_nonzero_passes_on_a_live_counter(self):
        ok = self.run_checker(VALID, "--require-nonzero", "server_requests")
        self.assertEqual(ok.returncode, 0, ok.stderr)

    def test_require_nonzero_rejects_all_zero_samples(self):
        text = "# TYPE idle counter\nidle 0\nidle 0\n"
        result = self.run_checker(text, "--require-nonzero", "idle")
        self.assertEqual(result.returncode, 1)
        self.assertIn("only has zero samples", result.stderr)

    def test_require_nonzero_rejects_missing_family(self):
        result = self.run_checker(VALID, "--require-nonzero", "no_such")
        self.assertEqual(result.returncode, 1)
        self.assertIn("no_such", result.stderr)

    def test_require_nonzero_accepts_any_nonzero_sample(self):
        text = "# TYPE mixed gauge\nmixed 0\nmixed 3\n"
        self.assertEqual(
            self.run_checker(text, "--require-nonzero", "mixed").returncode,
            0)

    def test_comments_and_blank_lines_are_ignored(self):
        text = "\n# free-form comment\n# HELP m helps\n" + VALID
        self.assertEqual(self.run_checker(text).returncode, 0)


if __name__ == "__main__":
    unittest.main()
