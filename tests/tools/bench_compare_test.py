#!/usr/bin/env python3
"""Unit tests for tools/bench_compare (cdpd.bench schema v1/v2/v3).

Each test builds a baseline and a current artifact directory in a
tempdir, runs the comparator as a subprocess (the same way CI does),
and asserts on its exit status and report text: a wall-time regression
above the threshold fails, one below the --min-seconds noise floor
does not, a missing case is reported without failing, malformed JSON
is skipped with a warning, a schema-v2 memory regression fails on its
own even when the wall times are flat, and the schema-v3 throughput
(relaxations_per_sec, lower = regression) and cost-cache
(cache_hit_rate, absolute delta) columns gate independently.

Registered with ctest as `bench_compare_test` (see tests/CMakeLists.txt).
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      os.pardir, os.pardir, "tools", "bench_compare")


def report(bench, cases, schema_version=3):
    data = {
        "schema_version": schema_version,
        "kind": "cdpd.bench",
        "bench": bench,
        "git_sha": "test",
        "threads": 1,
        "rows": 1000,
        "unix_time": 0,
        "cases": cases,
    }
    if schema_version >= 2:
        data["rss_peak_bytes"] = 1 << 20
    return data


def case(name, wall_seconds, peak_bytes=None, cpu_seconds=0.0,
         relaxations_per_sec=None, cache_hit_rate=None,
         statements_per_sec=None, requests_per_sec=None):
    c = {"name": name, "cpu_seconds": cpu_seconds, "metrics": {}}
    if wall_seconds is not None:
        c["wall_seconds"] = wall_seconds
    if peak_bytes is not None:
        c["peak_bytes"] = peak_bytes
    if relaxations_per_sec is not None:
        c["relaxations_per_sec"] = relaxations_per_sec
    if cache_hit_rate is not None:
        c["cache_hit_rate"] = cache_hit_rate
    if statements_per_sec is not None:
        c["statements_per_sec"] = statements_per_sec
    if requests_per_sec is not None:
        c["requests_per_sec"] = requests_per_sec
    return c


class BenchCompareTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.base_dir = os.path.join(self.tmp.name, "base")
        self.cur_dir = os.path.join(self.tmp.name, "cur")
        os.mkdir(self.base_dir)
        os.mkdir(self.cur_dir)

    def tearDown(self):
        self.tmp.cleanup()

    def write(self, directory, data, filename=None):
        name = filename or f"BENCH_{data['bench']}.json"
        with open(os.path.join(directory, name), "w") as f:
            json.dump(data, f)

    def run_compare(self, *extra):
        return subprocess.run(
            [sys.executable, SCRIPT, self.base_dir, self.cur_dir, *extra],
            capture_output=True, text=True)

    def test_regression_above_noise_floor_fails(self):
        self.write(self.base_dir, report("b", [case("slow", 1.0)]))
        self.write(self.cur_dir, report("b", [case("slow", 2.0)]))
        result = self.run_compare()
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("REGRESSIONS", result.stdout)
        self.assertIn("b/slow", result.stdout)

    def test_regression_below_noise_floor_is_ignored(self):
        # 4x slower, but both sides are under the 5 ms default floor:
        # timer noise, not a regression.
        self.write(self.base_dir, report("b", [case("fast", 0.001)]))
        self.write(self.cur_dir, report("b", [case("fast", 0.004)]))
        result = self.run_compare()
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("no regressions", result.stdout)
        self.assertIn("below", result.stdout)

    def test_small_slowdown_within_threshold_passes(self):
        self.write(self.base_dir, report("b", [case("steady", 1.0)]))
        self.write(self.cur_dir, report("b", [case("steady", 1.1)]))
        result = self.run_compare()
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_missing_case_is_reported_but_never_fails(self):
        self.write(self.base_dir,
                   report("b", [case("kept", 1.0), case("gone", 1.0)]))
        self.write(self.cur_dir, report("b", [case("kept", 1.0)]))
        result = self.run_compare()
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("[missing case] b/gone", result.stdout)

    def test_malformed_json_is_skipped_with_a_warning(self):
        with open(os.path.join(self.base_dir, "BENCH_bad.json"), "w") as f:
            f.write("{not json")
        self.write(self.base_dir, report("ok", [case("c", 1.0)]))
        self.write(self.cur_dir, report("ok", [case("c", 1.0)]))
        result = self.run_compare()
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("cannot read", result.stderr)

    def test_unknown_schema_version_is_skipped(self):
        self.write(self.base_dir, report("ok", [case("c", 1.0)]))
        self.write(self.base_dir,
                   report("future", [case("c", 1.0)], schema_version=99))
        self.write(self.cur_dir, report("ok", [case("c", 1.0)]))
        result = self.run_compare()
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("unknown schema_version", result.stderr)

    def test_v1_artifacts_still_compare_wall_time(self):
        self.write(self.base_dir,
                   report("old", [case("c", 1.0)], schema_version=1))
        self.write(self.cur_dir,
                   report("old", [case("c", 3.0)], schema_version=1))
        result = self.run_compare()
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("REGRESSIONS", result.stdout)

    def test_memory_regression_fails_even_with_flat_wall_time(self):
        self.write(self.base_dir,
                   report("m", [case("c", 1.0, peak_bytes=1 << 20)]))
        self.write(self.cur_dir,
                   report("m", [case("c", 1.0, peak_bytes=2 << 20)]))
        result = self.run_compare()
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("[mem]", result.stdout)

    def test_memory_below_min_bytes_is_ignored(self):
        # 4x more bytes, but both under --min-bytes: allocator rounding.
        self.write(self.base_dir,
                   report("m", [case("c", 1.0, peak_bytes=1024)]))
        self.write(self.cur_dir,
                   report("m", [case("c", 1.0, peak_bytes=4096)]))
        result = self.run_compare()
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_v1_baseline_against_v2_run_has_no_memory_columns(self):
        self.write(self.base_dir,
                   report("m", [case("c", 1.0)], schema_version=1))
        self.write(self.cur_dir,
                   report("m", [case("c", 1.0, peak_bytes=1 << 30)]))
        result = self.run_compare()
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("0 with memory columns", result.stdout)

    def test_throughput_drop_fails_even_with_flat_wall_time(self):
        self.write(self.base_dir,
                   report("r", [case("c", 1.0, relaxations_per_sec=2e8)]))
        self.write(self.cur_dir,
                   report("r", [case("c", 1.0, relaxations_per_sec=1e8)]))
        result = self.run_compare()
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("[relax]", result.stdout)

    def test_throughput_gain_is_an_improvement_not_a_regression(self):
        self.write(self.base_dir,
                   report("r", [case("c", 1.0, relaxations_per_sec=1e8)]))
        self.write(self.cur_dir,
                   report("r", [case("c", 0.95, relaxations_per_sec=5e8)]))
        result = self.run_compare()
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("[relax]", result.stdout)
        self.assertIn("improvements", result.stdout)

    def test_throughput_below_noise_floor_is_ignored(self):
        # Huge apparent drop, but over sub-millisecond wall times.
        self.write(self.base_dir,
                   report("r", [case("c", 0.001, relaxations_per_sec=9e8)]))
        self.write(self.cur_dir,
                   report("r", [case("c", 0.001, relaxations_per_sec=1e8)]))
        result = self.run_compare()
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_scaling_throughput_drop_fails(self):
        self.write(self.base_dir,
                   report("s", [case("n1M_m12", 1.0,
                                     statements_per_sec=1e6)]))
        self.write(self.cur_dir,
                   report("s", [case("n1M_m12", 1.0,
                                     statements_per_sec=5e5)]))
        result = self.run_compare()
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("[stmt]", result.stdout)

    def test_scaling_throughput_wobble_within_threshold_passes(self):
        self.write(self.base_dir,
                   report("s", [case("n1M_m12", 1.0,
                                     statements_per_sec=1e6)]))
        self.write(self.cur_dir,
                   report("s", [case("n1M_m12", 1.0,
                                     statements_per_sec=0.9e6)]))
        result = self.run_compare()
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_serving_throughput_drop_fails(self):
        self.write(self.base_dir,
                   report("serving", [case("mixed", 1.0,
                                           requests_per_sec=6e4)]))
        self.write(self.cur_dir,
                   report("serving", [case("mixed", 1.0,
                                           requests_per_sec=3e4)]))
        result = self.run_compare()
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("[rps]", result.stdout)

    def test_serving_throughput_wobble_within_threshold_passes(self):
        self.write(self.base_dir,
                   report("serving", [case("mixed", 1.0,
                                           requests_per_sec=6e4)]))
        self.write(self.cur_dir,
                   report("serving", [case("mixed", 1.0,
                                           requests_per_sec=5e4)]))
        result = self.run_compare()
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_missing_wall_seconds_is_skipped_not_crashed(self):
        self.write(self.base_dir,
                   report("b", [case("broken", None), case("ok", 1.0)]))
        self.write(self.cur_dir,
                   report("b", [case("broken", 1.0), case("ok", 1.0)]))
        result = self.run_compare()
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("[skip] b/broken", result.stdout)
        self.assertIn("missing wall_seconds", result.stdout)

    def test_unparsable_wall_seconds_is_skipped_not_crashed(self):
        self.write(self.base_dir, report("b", [case("broken", 1.0)]))
        self.write(self.cur_dir, report("b", [case("broken", "oops")]))
        result = self.run_compare()
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("[skip] b/broken", result.stdout)

    def test_zero_baseline_wall_time_is_skipped_not_infinite(self):
        # With the noise floor disabled a 0 s baseline used to divide
        # by zero into an infinite ratio (a spurious regression).
        self.write(self.base_dir, report("b", [case("zero", 0.0)]))
        self.write(self.cur_dir, report("b", [case("zero", 1.0)]))
        result = self.run_compare("--min-seconds", "0")
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("[skip] b/zero", result.stdout)
        self.assertIn("zero", result.stdout)

    def test_cache_hit_rate_drop_fails(self):
        self.write(self.base_dir,
                   report("h", [case("warm", 1.0, cache_hit_rate=0.97)]))
        self.write(self.cur_dir,
                   report("h", [case("warm", 1.0, cache_hit_rate=0.50)]))
        result = self.run_compare()
        self.assertEqual(result.returncode, 1, result.stdout)
        self.assertIn("[cache]", result.stdout)

    def test_cache_hit_rate_wobble_within_delta_passes(self):
        self.write(self.base_dir,
                   report("h", [case("warm", 1.0, cache_hit_rate=0.97)]))
        self.write(self.cur_dir,
                   report("h", [case("warm", 1.0, cache_hit_rate=0.95)]))
        result = self.run_compare()
        self.assertEqual(result.returncode, 0, result.stdout)

    def test_v2_baseline_against_v3_run_has_no_rate_columns(self):
        self.write(self.base_dir,
                   report("r", [case("c", 1.0)], schema_version=2))
        self.write(self.cur_dir,
                   report("r", [case("c", 1.0, relaxations_per_sec=1e6,
                                     cache_hit_rate=0.1)]))
        result = self.run_compare()
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("0 with throughput/cache columns", result.stdout)

    def test_warn_only_reports_but_exits_zero(self):
        self.write(self.base_dir, report("b", [case("slow", 1.0)]))
        self.write(self.cur_dir, report("b", [case("slow", 2.0)]))
        result = self.run_compare("--warn-only")
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("REGRESSIONS", result.stdout)

    def test_empty_current_directory_fails(self):
        self.write(self.base_dir, report("b", [case("c", 1.0)]))
        result = self.run_compare()
        self.assertEqual(result.returncode, 1)

    def test_empty_baseline_directory_passes(self):
        self.write(self.cur_dir, report("b", [case("c", 1.0)]))
        result = self.run_compare()
        self.assertEqual(result.returncode, 0, result.stdout)
        self.assertIn("nothing to compare", result.stdout)


if __name__ == "__main__":
    unittest.main()
