#!/usr/bin/env python3
"""Flag-parsing contract of advisor_server.

Runs the built binary (path in $CDPD_ADVISOR_SERVER, wired up by
tests/CMakeLists.txt via $<TARGET_FILE:advisor_server>) and asserts on
exit codes and diagnostics only — every case is rejected before a
socket is opened, so the suite never actually serves.

Pins the contract the PR 10 flags added: --slowlog-n must be a
positive integer; --record / --postmortem-dir need non-empty values;
--record-ring / --record-segment-bytes must be positive; unknown flags
and malformed values print the usage and exit 2; --help exits 0.
"""

import os
import subprocess
import unittest

SERVER = os.environ.get("CDPD_ADVISOR_SERVER")


@unittest.skipIf(not SERVER or not os.path.exists(SERVER),
                 "CDPD_ADVISOR_SERVER not set or binary missing")
class AdvisorServerFlagsTest(unittest.TestCase):
    def run_server(self, *args):
        return subprocess.run([SERVER, *args], capture_output=True,
                              text=True, timeout=60)

    def assert_usage_error(self, result):
        self.assertEqual(result.returncode, 2,
                         result.stdout + result.stderr)
        self.assertIn("usage: advisor_server", result.stderr)

    def test_help_exits_zero_with_usage(self):
        result = self.run_server("--help")
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("usage: advisor_server", result.stdout)
        self.assertIn("--slowlog-n", result.stdout)
        self.assertIn("--record PATH", result.stdout)
        self.assertIn("--postmortem-dir", result.stdout)

    def test_unknown_flag_fails(self):
        result = self.run_server("--frobnicate")
        self.assert_usage_error(result)
        self.assertIn("unknown argument --frobnicate", result.stderr)

    def test_slowlog_n_rejects_zero(self):
        self.assert_usage_error(self.run_server("--slowlog-n", "0"))

    def test_slowlog_n_rejects_negative(self):
        self.assert_usage_error(self.run_server("--slowlog-n", "-1"))

    def test_slowlog_n_rejects_garbage(self):
        self.assert_usage_error(self.run_server("--slowlog-n", "many"))

    def test_slowlog_n_rejects_missing_value(self):
        self.assert_usage_error(self.run_server("--slowlog-n"))

    def test_record_rejects_missing_value(self):
        self.assert_usage_error(self.run_server("--record"))

    def test_record_rejects_empty_value(self):
        self.assert_usage_error(self.run_server("--record", ""))

    def test_record_ring_rejects_zero(self):
        self.assert_usage_error(self.run_server("--record-ring", "0"))

    def test_record_segment_bytes_rejects_negative(self):
        self.assert_usage_error(
            self.run_server("--record-segment-bytes", "-5"))

    def test_postmortem_dir_rejects_missing_value(self):
        self.assert_usage_error(self.run_server("--postmortem-dir"))

    def test_port_rejects_out_of_range(self):
        self.assert_usage_error(self.run_server("--port", "70000"))


if __name__ == "__main__":
    unittest.main()
