// Scaled-down versions of the paper's experiments (§6), asserting the
// qualitative results the benches reproduce at full scale:
//  * Table 2 — the unconstrained design tracks minor shifts (I(a,b) vs
//    I(b) and I(c,d) vs I(d)); the k=2 design holds I(a,b) / I(c,d) /
//    I(a,b) across the three phases.
//  * Figure 3 — W1 prefers its unconstrained design, W2/W3 prefer the
//    constrained design recommended from W1.

#include <gtest/gtest.h>

#include "core/advisor.h"
#include "cost/what_if.h"
#include "workload/standard_workloads.h"

namespace cdpd {
namespace {

class PaperExperimentsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = MakePaperSchema();
    // Scaled table (the paper uses 2.5M rows; 200k preserves every
    // cost ordering — see DESIGN.md) and scaled blocks of 100 queries.
    model_ = std::make_unique<CostModel>(schema_, 200'000, 500'000);
    WorkloadGenerator gen(schema_, 500'000, /*seed=*/1234);
    w1_ = MakeScaledPaperWorkload("W1", kBlock, &gen).value();
    w2_ = MakeScaledPaperWorkload("W2", kBlock, &gen).value();
    w3_ = MakeScaledPaperWorkload("W3", kBlock, &gen).value();
  }

  Recommendation Recommend(std::optional<int64_t> k) {
    Advisor advisor(model_.get());
    AdvisorOptions options;
    options.block_size = kBlock;
    options.k = k;
    options.candidate_indexes = MakePaperCandidateIndexes(schema_);
    options.final_config = Configuration::Empty();  // As in §6.1.
    auto rec = advisor.Recommend(w1_, options);
    EXPECT_TRUE(rec.ok()) << rec.status();
    return std::move(rec).value();
  }

  /// Cost of executing `workload` under a W1-derived schedule
  /// (including the transitions), per the what-if model.
  double WorkloadCostUnderSchedule(const Workload& workload,
                                   const std::vector<Configuration>& configs) {
    WhatIfEngine what_if(model_.get(), workload.Span(),
                         SegmentFixed(workload.size(), kBlock));
    DesignProblem problem;
    problem.what_if = &what_if;
    problem.candidates = {Configuration::Empty()};  // Unused here.
    problem.initial = Configuration::Empty();
    return EvaluateScheduleCost(problem, configs);
  }

  // 200-query blocks keep every design decision decisively profitable
  // (at 100 the first B-run's switch is within sampling noise of the
  // build cost, and the optimizer legitimately keeps I(a,b)).
  static constexpr size_t kBlock = 200;
  Schema schema_;
  std::unique_ptr<CostModel> model_;
  Workload w1_, w2_, w3_;
};

TEST_F(PaperExperimentsTest, Table2UnconstrainedDesignTracksMinorShifts) {
  const Recommendation rec = Recommend(/*k=*/std::nullopt);
  ASSERT_EQ(rec.schedule.configs.size(), 30u);
  const Configuration iab({IndexDef({0, 1})});
  const Configuration ib({IndexDef({1})});
  const Configuration icd({IndexDef({2, 3})});
  const Configuration id({IndexDef({3})});
  const std::vector<std::string> letters = PaperBlockMixLetters("W1");
  for (size_t block = 0; block < 30; ++block) {
    const Configuration& got = rec.schedule.configs[block];
    if (letters[block] == "A") {
      EXPECT_EQ(got, iab) << "block " << block;
    } else if (letters[block] == "B") {
      EXPECT_EQ(got, ib) << "block " << block;
    } else if (letters[block] == "C") {
      EXPECT_EQ(got, icd) << "block " << block;
    } else {
      EXPECT_EQ(got, id) << "block " << block;
    }
  }
  EXPECT_GE(rec.changes, 10);  // Tracks every minor shift.
}

TEST_F(PaperExperimentsTest, Table2ConstrainedDesignTracksOnlyMajorShifts) {
  const Recommendation rec = Recommend(/*k=*/2);
  ASSERT_EQ(rec.schedule.configs.size(), 30u);
  EXPECT_LE(rec.changes, 2);
  const Configuration iab({IndexDef({0, 1})});
  const Configuration icd({IndexDef({2, 3})});
  for (size_t block = 0; block < 10; ++block) {
    EXPECT_EQ(rec.schedule.configs[block], iab) << "block " << block;
  }
  for (size_t block = 10; block < 20; ++block) {
    EXPECT_EQ(rec.schedule.configs[block], icd) << "block " << block;
  }
  for (size_t block = 20; block < 30; ++block) {
    EXPECT_EQ(rec.schedule.configs[block], iab) << "block " << block;
  }
}

TEST_F(PaperExperimentsTest, Figure3CostOrderings) {
  const Recommendation unconstrained = Recommend(/*k=*/std::nullopt);
  const Recommendation constrained = Recommend(/*k=*/2);

  // W1: the unconstrained design is optimal for it by definition.
  const double w1_unc =
      WorkloadCostUnderSchedule(w1_, unconstrained.schedule.configs);
  const double w1_con =
      WorkloadCostUnderSchedule(w1_, constrained.schedule.configs);
  EXPECT_LT(w1_unc, w1_con);
  // The paper reports ~14% slower; ours should be modest, not extreme.
  EXPECT_LT((w1_con - w1_unc) / w1_unc, 0.5);

  // W2 and W3 (same major phases, different minor shifts) are better
  // off under the constrained design.
  const double w2_unc =
      WorkloadCostUnderSchedule(w2_, unconstrained.schedule.configs);
  const double w2_con =
      WorkloadCostUnderSchedule(w2_, constrained.schedule.configs);
  EXPECT_LT(w2_con, w2_unc);

  const double w3_unc =
      WorkloadCostUnderSchedule(w3_, unconstrained.schedule.configs);
  const double w3_con =
      WorkloadCostUnderSchedule(w3_, constrained.schedule.configs);
  EXPECT_LT(w3_con, w3_unc);

  // And W3 (out of phase) suffers more under the W1-fitted design than
  // W2 does.
  EXPECT_GT(w3_unc / w3_con, w2_unc / w2_con * 0.99);
}

TEST_F(PaperExperimentsTest, KAwareSpaceStaysWithinTwiceThePrediction) {
  // §3's space claim, measured at paper-experiment scale: across the
  // k sweep, the DP table's tracked peak stays within 2x of the
  // O(k n 2^{2m})-derived prediction in both directions.
  Advisor advisor(model_.get());
  for (int64_t k : {1, 2, 4, 8}) {
    AdvisorOptions options;
    options.block_size = kBlock;
    options.k = k;
    options.candidate_indexes = MakePaperCandidateIndexes(schema_);
    options.final_config = Configuration::Empty();
    options.explain = true;
    const Recommendation rec = advisor.Recommend(w1_, options).value();
    ASSERT_TRUE(rec.explain.has_value()) << "k=" << k;
    const ExplainReport& report = *rec.explain;
    ASSERT_GT(report.predicted_kaware_bytes, 0) << "k=" << k;
    ASSERT_GT(report.actual_kaware_bytes, 0) << "k=" << k;
    const double ratio =
        static_cast<double>(report.actual_kaware_bytes) /
        static_cast<double>(report.predicted_kaware_bytes);
    EXPECT_GE(ratio, 0.5) << "k=" << k;
    EXPECT_LE(ratio, 2.0) << "k=" << k;
    EXPECT_GT(rec.stats.peak_bytes_total, 0) << "k=" << k;
    EXPECT_FALSE(rec.stats.memory_limit_hit) << "k=" << k;
  }
}

TEST_F(PaperExperimentsTest, ConstrainedCostsDecreaseInK) {
  double previous = std::numeric_limits<double>::infinity();
  for (int64_t k : {0, 1, 2, 4, 8, 29}) {
    const Recommendation rec = Recommend(k);
    EXPECT_LE(rec.schedule.total_cost, previous + 1e-6) << "k=" << k;
    previous = rec.schedule.total_cost;
  }
  const Recommendation unconstrained = Recommend(std::nullopt);
  EXPECT_NEAR(previous, unconstrained.schedule.total_cost, 1e-6);
}

}  // namespace
}  // namespace cdpd
