// Range-query (BETWEEN) support across the stack: parser -> binder ->
// cost model -> B+-tree range scan -> executor, plus the what-if
// profile behaviour that makes ranges advisable.

#include <algorithm>

#include <gtest/gtest.h>

#include "cost/what_if.h"
#include "engine/database.h"
#include "sql/binder.h"
#include "sql/parser.h"
#include "workload/generator.h"

namespace cdpd {
namespace {

TEST(RangeSqlTest, ParsesAndPrintsBetween) {
  auto ast = ParseStatement("SELECT a FROM t WHERE b BETWEEN 10 AND 20");
  ASSERT_TRUE(ast.ok()) << ast.status();
  const auto& select = std::get<SelectAst>(ast.value());
  EXPECT_TRUE(select.is_range);
  EXPECT_EQ(select.where_lo, 10);
  EXPECT_EQ(select.where_hi, 20);
  EXPECT_EQ(AstToString(ast.value()),
            "SELECT a FROM t WHERE b BETWEEN 10 AND 20");
}

TEST(RangeSqlTest, RejectsReversedBounds) {
  EXPECT_EQ(
      ParseStatement("SELECT a FROM t WHERE b BETWEEN 20 AND 10")
          .status()
          .code(),
      StatusCode::kParseError);
}

TEST(RangeSqlTest, RejectsMalformedBetween) {
  EXPECT_FALSE(ParseStatement("SELECT a FROM t WHERE b BETWEEN 1").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM t WHERE b BETWEEN 1 2").ok());
}

TEST(RangeSqlTest, BindsToSelectRange) {
  const Schema schema = MakePaperSchema();
  auto ast = ParseStatement("SELECT c FROM t WHERE c BETWEEN 5 AND 9");
  ASSERT_TRUE(ast.ok());
  auto bound = BindStatement(schema, ast.value());
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(bound->type, StatementType::kSelectRange);
  EXPECT_EQ(bound->where_lo, 5);
  EXPECT_EQ(bound->where_hi, 9);
  EXPECT_EQ(bound->ToString(schema),
            "SELECT c FROM t WHERE c BETWEEN 5 AND 9");
}

class RangeCostTest : public ::testing::Test {
 protected:
  Schema schema_ = MakePaperSchema();
  CostModel model_{schema_, 2'500'000, 500'000};
};

TEST_F(RangeCostTest, ExpectedRangeMatchesScalesWithWidth) {
  EXPECT_DOUBLE_EQ(model_.ExpectedRangeMatches(0, 99'999), 500'000.0);
  EXPECT_DOUBLE_EQ(model_.ExpectedRangeMatches(10, 10),
                   model_.ExpectedMatches());
  EXPECT_DOUBLE_EQ(model_.ExpectedRangeMatches(5, 4), 0.0);
  // Clamped at the full table.
  EXPECT_DOUBLE_EQ(model_.ExpectedRangeMatches(0, 10'000'000), 2'500'000.0);
}

TEST_F(RangeCostTest, NarrowRangeSeeksWideRangeScans) {
  const Configuration ia({IndexDef({0})});
  const auto narrow = model_.ChooseAccessPath(
      BoundStatement::SelectRange(0, 0, 100, 200), ia);
  EXPECT_EQ(narrow.kind, AccessPathKind::kIndexSeek);
  // A range covering most of the domain: scanning wins.
  const auto wide = model_.ChooseAccessPath(
      BoundStatement::SelectRange(1, 0, 0, 499'000), ia);
  EXPECT_EQ(wide.kind, AccessPathKind::kTableScan);
}

TEST_F(RangeCostTest, RangeCostMonotoneInWidth) {
  const Configuration ia({IndexDef({0})});
  double previous = 0;
  for (Value width : {10, 100, 1000, 10'000, 100'000}) {
    const double cost = model_.StatementCost(
        BoundStatement::SelectRange(0, 0, 0, width), ia);
    EXPECT_GE(cost, previous);
    previous = cost;
  }
}

class RangeExecutionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = Database::Create(MakePaperSchema(), 20'000, 1000, /*seed=*/91)
              .value();
  }

  std::vector<Value> Reference(ColumnId select_col, ColumnId where_col,
                               Value lo, Value hi) {
    std::vector<Value> out;
    const Table& table = db_->table();
    for (RowId row = 0; row < table.num_rows(); ++row) {
      const Value v = table.GetValue(row, where_col);
      if (v >= lo && v <= hi) out.push_back(table.GetValue(row, select_col));
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  std::vector<Value> Run(ColumnId select_col, ColumnId where_col, Value lo,
                         Value hi, AccessPathKind expected) {
    AccessStats stats;
    auto result = db_->Execute(
        BoundStatement::SelectRange(select_col, where_col, lo, hi), &stats);
    EXPECT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->plan.kind, expected);
    std::vector<Value> values = result->values;
    std::sort(values.begin(), values.end());
    return values;
  }

  std::unique_ptr<Database> db_;
};

TEST_F(RangeExecutionTest, TableScanRange) {
  EXPECT_EQ(Run(0, 0, 100, 120, AccessPathKind::kTableScan),
            Reference(0, 0, 100, 120));
}

TEST_F(RangeExecutionTest, IndexRangeSeek) {
  AccessStats stats;
  ASSERT_TRUE(
      db_->ApplyConfiguration(Configuration({IndexDef({0})}), &stats).ok());
  EXPECT_EQ(Run(0, 0, 100, 120, AccessPathKind::kIndexSeek),
            Reference(0, 0, 100, 120));
  // Empty range.
  EXPECT_TRUE(Run(0, 0, 2000, 3000, AccessPathKind::kIndexSeek).empty());
  // Single-point range equals the point query.
  EXPECT_EQ(Run(0, 0, 77, 77, AccessPathKind::kIndexSeek),
            Reference(0, 0, 77, 77));
}

TEST_F(RangeExecutionTest, IndexRangeSeekWithFetch) {
  AccessStats stats;
  ASSERT_TRUE(
      db_->ApplyConfiguration(Configuration({IndexDef({0})}), &stats).ok());
  // ~20 matches: fetches are still cheaper than the 99-page scan; at
  // 3x the width the optimizer would rightly switch to the scan.
  EXPECT_EQ(Run(3, 0, 500, 500, AccessPathKind::kIndexSeekWithFetch),
            Reference(3, 0, 500, 500));
}

TEST_F(RangeExecutionTest, CoveringScanRange) {
  AccessStats stats;
  ASSERT_TRUE(
      db_->ApplyConfiguration(Configuration({IndexDef({0, 1})}), &stats)
          .ok());
  EXPECT_EQ(Run(1, 1, 10, 40, AccessPathKind::kCoveringScan),
            Reference(1, 1, 10, 40));
}

TEST_F(RangeExecutionTest, RangeSeekChargesProportionalPages) {
  AccessStats stats;
  ASSERT_TRUE(
      db_->ApplyConfiguration(Configuration({IndexDef({0})}), &stats).ok());
  AccessStats narrow_stats;
  AccessStats wide_stats;
  (void)db_->Execute(BoundStatement::SelectRange(0, 0, 0, 9), &narrow_stats);
  (void)db_->Execute(BoundStatement::SelectRange(0, 0, 0, 399), &wide_stats);
  EXPECT_GT(wide_stats.sequential_pages, narrow_stats.sequential_pages);
  EXPECT_GT(wide_stats.rows_examined, 10 * narrow_stats.rows_examined);
}

TEST(RangeWhatIfTest, ProfilesCollapseByWidthNotPosition) {
  const Schema schema = MakePaperSchema();
  CostModel model(schema, 100'000, 1000);
  std::vector<BoundStatement> statements = {
      BoundStatement::SelectRange(0, 0, 10, 19),
      BoundStatement::SelectRange(0, 0, 500, 509),  // Same width.
      BoundStatement::SelectRange(0, 0, 0, 99),     // Different width.
  };
  const std::vector<Segment> segments = {{0, 3}};
  WhatIfEngine what_if(&model, statements, segments);
  (void)what_if.SegmentCost(0, Configuration::Empty());
  EXPECT_EQ(what_if.costings(), 2);  // Two width classes.
}

TEST(RangeGeneratorTest, RangeFractionProducesRanges) {
  WorkloadGenerator gen(MakePaperSchema(), 10'000, 71);
  DmlMixOptions dml;
  dml.range_fraction = 0.5;
  dml.max_range_width = 50;
  auto workload =
      gen.GenerateBlocked(MakePaperQueryMixes(), {0, 1}, 500, dml).value();
  int ranges = 0;
  for (const BoundStatement& s : workload.statements) {
    if (s.type == StatementType::kSelectRange) {
      ++ranges;
      EXPECT_LE(s.where_lo, s.where_hi);
      EXPECT_LE(s.where_hi - s.where_lo + 1, 50);
      EXPECT_LT(s.where_hi, 10'000);
    }
  }
  EXPECT_NEAR(ranges / 1000.0, 0.5, 0.06);
}

TEST(RangeGeneratorTest, ValidatesRangeOptions) {
  WorkloadGenerator gen(MakePaperSchema(), 10'000, 72);
  DmlMixOptions dml;
  dml.range_fraction = 0.5;
  dml.max_range_width = 0;
  EXPECT_FALSE(
      gen.GenerateBlocked(MakePaperQueryMixes(), {0}, 10, dml).ok());
  dml.max_range_width = 10;
  dml.update_fraction = 0.7;  // Sums above 1 with range 0.5.
  EXPECT_FALSE(
      gen.GenerateBlocked(MakePaperQueryMixes(), {0}, 10, dml).ok());
}

TEST(RangeBTreeTest, SeekValueRangeHonorsBounds) {
  BTree tree(IndexDef({0}));
  std::vector<IndexEntry> entries;
  for (int i = 0; i < 1000; ++i) {
    IndexEntry e;
    e.key.Append(i % 100);  // Values 0..99, 10 duplicates each.
    e.rid = i;
    entries.push_back(e);
  }
  std::sort(entries.begin(), entries.end());
  AccessStats stats;
  tree.BulkLoad(entries, &stats);

  int visited = 0;
  tree.SeekValueRange(20, 29, &stats, [&](const IndexEntry& e) {
    EXPECT_GE(e.key.value(0), 20);
    EXPECT_LE(e.key.value(0), 29);
    ++visited;
  });
  EXPECT_EQ(visited, 100);

  visited = 0;
  tree.SeekValueRange(99, 200, &stats, [&](const IndexEntry&) { ++visited; });
  EXPECT_EQ(visited, 10);

  visited = 0;
  tree.SeekValueRange(200, 100, &stats, [&](const IndexEntry&) { ++visited; });
  EXPECT_EQ(visited, 0);  // lo > hi.
}

TEST(RangeEndToEndTest, SqlRangeThroughDatabase) {
  auto db = Database::Create(MakePaperSchema(), 5'000, 100, 93).value();
  AccessStats stats;
  ASSERT_TRUE(db->ExecuteSql("CREATE INDEX ON t (b)", &stats).ok());
  auto result =
      db->ExecuteSql("SELECT b FROM t WHERE b BETWEEN 10 AND 12", &stats);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->plan.kind, AccessPathKind::kIndexSeek);
  for (Value v : result->values) {
    EXPECT_GE(v, 10);
    EXPECT_LE(v, 12);
  }
  EXPECT_GT(result->rows_affected, 0);
}

}  // namespace
}  // namespace cdpd
