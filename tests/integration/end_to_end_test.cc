// Full-stack integration: SQL in, recommendation out, schedule applied
// to the physical engine, workload executed under it — the complete
// loop a user of the library runs.

#include <gtest/gtest.h>

#include "core/advisor.h"
#include "engine/database.h"
#include "sql/binder.h"
#include "sql/parser.h"
#include "workload/standard_workloads.h"

namespace cdpd {
namespace {

TEST(EndToEndTest, SqlScriptThroughParserBinderExecutor) {
  auto db = Database::Create(MakePaperSchema(), 5'000, 100, 9).value();
  AccessStats stats;
  ASSERT_TRUE(db->ExecuteSql("CREATE INDEX ON t (a)", &stats).ok());
  auto select = db->ExecuteSql("SELECT a FROM t WHERE a = 42", &stats);
  ASSERT_TRUE(select.ok());
  EXPECT_EQ(select->plan.kind, AccessPathKind::kIndexSeek);
  const int64_t hits_before = select->rows_affected;

  ASSERT_TRUE(
      db->ExecuteSql("UPDATE t SET a = 42 WHERE b = 7", &stats).ok());
  auto select_after = db->ExecuteSql("SELECT a FROM t WHERE a = 42", &stats);
  ASSERT_TRUE(select_after.ok());
  EXPECT_GE(select_after->rows_affected, hits_before);

  ASSERT_TRUE(
      db->ExecuteSql("INSERT INTO t VALUES (42, 1, 2, 3)", &stats).ok());
  auto select_final = db->ExecuteSql("SELECT a FROM t WHERE a = 42", &stats);
  ASSERT_TRUE(select_final.ok());
  EXPECT_EQ(select_final->rows_affected, select_after->rows_affected + 1);
}

TEST(EndToEndTest, RecommendationAppliedToEngineBeatsStaticEmptyDesign) {
  auto db = Database::Create(MakePaperSchema(), 50'000, 500'000, 10).value();
  WorkloadGenerator gen(db->schema(), 500'000, 11);
  Workload w1 = MakeScaledPaperWorkload("W1", 50, &gen).value();

  Advisor advisor(&db->cost_model());
  AdvisorOptions options;
  options.block_size = 50;
  options.k = 2;
  options.candidate_indexes = MakePaperCandidateIndexes(db->schema());
  auto rec = advisor.Recommend(w1, options);
  ASSERT_TRUE(rec.ok()) << rec.status();

  // Execute the workload under the recommended schedule, applying each
  // design transition at its segment boundary.
  AccessStats with_design;
  for (size_t s = 0; s < rec->segments.size(); ++s) {
    ASSERT_TRUE(
        db->ApplyConfiguration(rec->schedule.configs[s], &with_design).ok());
    const Segment& segment = rec->segments[s];
    auto run = db->RunWorkload(std::span<const BoundStatement>(
        w1.statements.data() + segment.begin, segment.size()));
    ASSERT_TRUE(run.ok());
    with_design += run->stats;
  }
  // Reset and execute under the static empty design.
  AccessStats reset;
  ASSERT_TRUE(db->ApplyConfiguration(Configuration::Empty(), &reset).ok());
  auto baseline = db->RunWorkload(w1.Span());
  ASSERT_TRUE(baseline.ok());

  const double cost_with_design =
      db->cost_model().StatsToCost(with_design);
  const double cost_baseline = db->cost_model().StatsToCost(baseline->stats);
  EXPECT_LT(cost_with_design, 0.8 * cost_baseline);
}

TEST(EndToEndTest, MeasuredCostTracksWhatIfEstimate) {
  auto db = Database::Create(MakePaperSchema(), 50'000, 500'000, 12).value();
  WorkloadGenerator gen(db->schema(), 500'000, 13);
  Workload w1 = MakeScaledPaperWorkload("W1", 50, &gen).value();

  Advisor advisor(&db->cost_model());
  AdvisorOptions options;
  options.block_size = 50;
  options.k = 2;
  options.candidate_indexes = MakePaperCandidateIndexes(db->schema());
  auto rec = advisor.Recommend(w1, options);
  ASSERT_TRUE(rec.ok());

  AccessStats measured;
  for (size_t s = 0; s < rec->segments.size(); ++s) {
    ASSERT_TRUE(
        db->ApplyConfiguration(rec->schedule.configs[s], &measured).ok());
    const Segment& segment = rec->segments[s];
    auto run = db->RunWorkload(std::span<const BoundStatement>(
        w1.statements.data() + segment.begin, segment.size()));
    ASSERT_TRUE(run.ok());
    measured += run->stats;
  }
  const double measured_cost = db->cost_model().StatsToCost(measured);
  // The estimate excludes per-query CPU noise and uses expected match
  // counts; agreement within 2x is the contract.
  EXPECT_GT(measured_cost, 0.5 * rec->schedule.total_cost);
  EXPECT_LT(measured_cost, 2.0 * rec->schedule.total_cost);
}

TEST(EndToEndTest, DeterministicRecommendationAcrossRuns) {
  auto run_once = [] {
    CostModel model(MakePaperSchema(), 100'000, 500'000);
    WorkloadGenerator gen(MakePaperSchema(), 500'000, 99);
    Workload w1 = MakeScaledPaperWorkload("W1", 50, &gen).value();
    Advisor advisor(&model);
    AdvisorOptions options;
    options.block_size = 50;
    options.k = 2;
    auto rec = advisor.Recommend(w1, options);
    EXPECT_TRUE(rec.ok());
    return rec->schedule;
  };
  const DesignSchedule first = run_once();
  const DesignSchedule second = run_once();
  EXPECT_EQ(first.configs, second.configs);
  EXPECT_DOUBLE_EQ(first.total_cost, second.total_cost);
}

}  // namespace
}  // namespace cdpd
