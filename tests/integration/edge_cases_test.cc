// Edge-case sweep: distinct behaviours not covered by the per-module
// suites — boundary inputs, degenerate problem sizes, and interactions
// between features added on top of the paper.

#include <gtest/gtest.h>

#include "common/stopwatch.h"
#include "core/advisor.h"
#include "core/design_merging.h"
#include "core/k_aware_graph.h"
#include "core/path_ranking.h"
#include "core/unconstrained_optimizer.h"
#include "engine/database.h"
#include "test_util.h"
#include "workload/standard_workloads.h"
#include "workload/trace_io.h"

namespace cdpd {
namespace {

using testing_util::MakeRandomProblem;

TEST(StopwatchTest, ElapsedIsMonotoneAndResets) {
  Stopwatch watch;
  const double t1 = watch.ElapsedSeconds();
  const double t2 = watch.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  watch.Reset();
  EXPECT_LE(watch.ElapsedSeconds(), t2 + 1.0);
  EXPECT_GE(watch.ElapsedMicros(), 0);
}

TEST(ExecutorEdgeCases, UpdateWhereColumnEqualsSetColumn) {
  auto db = Database::Create(MakePaperSchema(), 2'000, 50, 7).value();
  AccessStats stats;
  ASSERT_TRUE(
      db->ApplyConfiguration(Configuration({IndexDef({1})}), &stats).ok());
  // Move every b=5 row to b=6: afterwards b=5 matches nothing.
  auto count = [&](Value v) {
    AccessStats s;
    return db->Execute(BoundStatement::SelectPoint(1, 1, v), &s)
        ->rows_affected;
  };
  const int64_t before5 = count(5);
  const int64_t before6 = count(6);
  ASSERT_GT(before5, 0);
  AccessStats update_stats;
  auto update =
      db->Execute(BoundStatement::UpdatePoint(1, 6, 1, 5), &update_stats);
  ASSERT_TRUE(update.ok());
  EXPECT_EQ(update->rows_affected, before5);
  EXPECT_EQ(count(5), 0);
  EXPECT_EQ(count(6), before5 + before6);
  EXPECT_TRUE(
      db->catalog().GetIndex("t", IndexDef({1})).value()->CheckInvariants());
}

TEST(ExecutorEdgeCases, UpdateMatchingNothingIsANoOp) {
  auto db = Database::Create(MakePaperSchema(), 1'000, 50, 8).value();
  AccessStats stats;
  auto update =
      db->Execute(BoundStatement::UpdatePoint(0, 1, 0, 999'999), &stats);
  ASSERT_TRUE(update.ok());
  EXPECT_EQ(update->rows_affected, 0);
  EXPECT_EQ(stats.written_pages, 0);
}

TEST(ExecutorEdgeCases, InsertArityErrorSurfacesThroughExecute) {
  auto db = Database::Create(MakePaperSchema(), 100, 50, 9).value();
  AccessStats stats;
  EXPECT_EQ(
      db->Execute(BoundStatement::Insert({1, 2}), &stats).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(BTreeEdgeCases, EraseEverythingThenReuse) {
  BTree tree(IndexDef({0}));
  AccessStats stats;
  for (int i = 0; i < 600; ++i) {
    IndexEntry e;
    e.key.Append(i);
    e.rid = i;
    ASSERT_TRUE(tree.Insert(e, &stats));
  }
  for (int i = 0; i < 600; ++i) {
    IndexEntry e;
    e.key.Append(i);
    e.rid = i;
    ASSERT_TRUE(tree.Erase(e, &stats));
  }
  EXPECT_EQ(tree.num_entries(), 0);
  EXPECT_TRUE(tree.CheckInvariants());
  int found = 0;
  tree.SeekPrefix(CompositeKey({5}), &stats, [&](const IndexEntry&) {
    ++found;
  });
  EXPECT_EQ(found, 0);
  // The emptied tree accepts new entries.
  IndexEntry e;
  e.key.Append(42);
  e.rid = 1;
  EXPECT_TRUE(tree.Insert(e, &stats));
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(OptimizerEdgeCases, SingleSegmentProblemAllSolversAgree) {
  auto fixture = MakeRandomProblem(140, 1, 25);
  auto unconstrained = SolveUnconstrained(fixture->problem);
  auto k0 = SolveKAware(fixture->problem, 0);
  auto ranked = SolveByRanking(fixture->problem, 0);
  ASSERT_TRUE(unconstrained.ok());
  ASSERT_TRUE(k0.ok());
  ASSERT_TRUE(ranked.ok());
  EXPECT_NEAR(unconstrained->total_cost, k0->total_cost, 1e-9);
  EXPECT_NEAR(unconstrained->total_cost, ranked->total_cost, 1e-9);
}

TEST(OptimizerEdgeCases, KFarLargerThanSegments) {
  auto fixture = MakeRandomProblem(141, 3, 10);
  auto huge_k = SolveKAware(fixture->problem, 1'000);
  auto unconstrained = SolveUnconstrained(fixture->problem);
  ASSERT_TRUE(huge_k.ok());
  ASSERT_TRUE(unconstrained.ok());
  EXPECT_NEAR(huge_k->total_cost, unconstrained->total_cost, 1e-9);
}

TEST(OptimizerEdgeCases, MergingOnAlreadyConstantScheduleIsStable) {
  auto fixture = MakeRandomProblem(142, 4, 10);
  DesignSchedule constant;
  constant.configs.assign(4, fixture->problem.candidates[0]);
  constant.total_cost =
      EvaluateScheduleCost(fixture->problem, constant.configs);
  SolveStats stats;
  auto merged = MergeToConstraint(fixture->problem, constant, 0, &stats);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(stats.merge_steps, 0);
  EXPECT_EQ(merged->configs, constant.configs);
}

TEST(OptimizerEdgeCases, RankingHandlesTiedEdgeWeights) {
  // Identical statements in every segment make many paths tie exactly;
  // the ranking must still enumerate distinct paths in order.
  auto fixture = MakeRandomProblem(143, 3, 5);
  for (BoundStatement& s : fixture->statements) {
    s = BoundStatement::SelectPoint(0, 0, 1);
  }
  WhatIfEngine what_if(fixture->model.get(), fixture->statements,
                       fixture->segments);
  fixture->problem.what_if = &what_if;
  fixture->problem.candidates = fixture->problem.candidates.Prefix(3);
  auto graph = SequenceGraph::Build(fixture->problem);
  ASSERT_TRUE(graph.ok());
  PathRanker ranker(*graph);
  double previous = -1;
  int count = 0;
  while (auto path = ranker.Next()) {
    EXPECT_GE(path->cost, previous - 1e-9);
    previous = path->cost;
    ++count;
  }
  EXPECT_EQ(count, 27);
}

TEST(AdvisorEdgeCases, AdaptiveSegmentationWithHeuristicMethods) {
  CostModel model(MakePaperSchema(), 150'000, 500'000);
  WorkloadGenerator gen(MakePaperSchema(), 500'000, 150);
  Workload w1 = MakeScaledPaperWorkload("W1", 200, &gen).value();
  Advisor advisor(&model);
  for (OptimizerMethod method :
       {OptimizerMethod::kGreedySeq, OptimizerMethod::kMerging,
        OptimizerMethod::kHybrid}) {
    AdvisorOptions options;
    options.block_size = 200;
    options.k = 2;
    options.segmentation = SegmentationMode::kAdaptive;
    auto rec = advisor.Recommend(w1, options);
    ASSERT_TRUE(rec.ok()) << OptimizerMethodToString(method);
    EXPECT_LE(rec->changes, 2);
    EXPECT_LT(rec->segments.size(), 30u);
  }
}

TEST(TraceIoEdgeCases, RangeStatementsRoundTripThroughTraceFiles) {
  const Schema schema = MakePaperSchema();
  Workload workload;
  workload.statements = {
      BoundStatement::SelectRange(0, 0, 10, 99),
      BoundStatement::SelectRange(2, 3, -5, 5),
      BoundStatement::SelectPoint(1, 1, 7),
  };
  auto parsed = ReadTrace(schema, WriteTrace(schema, workload));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->statements, workload.statements);
}

TEST(WorkloadEdgeCases, EmptyWorkloadThroughAdvisorIsClean) {
  CostModel model(MakePaperSchema(), 10'000, 500'000);
  Advisor advisor(&model);
  AdvisorOptions options;
  options.k = 2;
  options.candidate_indexes = {IndexDef({0})};
  auto rec = advisor.Recommend(Workload{}, options);
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_TRUE(rec->schedule.configs.empty());
  EXPECT_EQ(rec->changes, 0);
}

}  // namespace
}  // namespace cdpd
