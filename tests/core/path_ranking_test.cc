#include "core/path_ranking.h"

#include <set>

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/k_aware_graph.h"
#include "core/unconstrained_optimizer.h"
#include "test_util.h"

namespace cdpd {
namespace {

using testing_util::MakeRandomProblem;

TEST(PathRankerTest, FirstPathIsTheShortest) {
  auto fixture = MakeRandomProblem(90, 4, 12);
  auto graph = SequenceGraph::Build(fixture->problem);
  ASSERT_TRUE(graph.ok());
  PathRanker ranker(*graph);
  auto first = ranker.Next();
  ASSERT_TRUE(first.has_value());
  auto unconstrained = SolveUnconstrained(fixture->problem);
  ASSERT_TRUE(unconstrained.ok());
  EXPECT_NEAR(first->cost, unconstrained->total_cost, 1e-6);
}

TEST(PathRankerTest, PathsComeInNonDecreasingCostOrder) {
  auto fixture = MakeRandomProblem(91, 4, 12);
  auto graph = SequenceGraph::Build(fixture->problem);
  ASSERT_TRUE(graph.ok());
  PathRanker ranker(*graph);
  double previous = -1;
  for (int i = 0; i < 200; ++i) {
    auto path = ranker.Next();
    ASSERT_TRUE(path.has_value()) << "path " << i;
    EXPECT_GE(path->cost, previous - 1e-9) << "path " << i;
    previous = path->cost;
    // Each path is a real source-to-destination path.
    EXPECT_EQ(path->nodes.front(), graph->source());
    EXPECT_EQ(path->nodes.back(), graph->destination());
    EXPECT_EQ(path->nodes.size(), 4u + 2u);
    // Its cost matches the schedule it spells.
    EXPECT_NEAR(path->cost,
                EvaluateScheduleCost(fixture->problem,
                                     graph->PathConfigs(path->nodes)),
                1e-6);
  }
}

TEST(PathRankerTest, EnumeratesAllPathsExactlyOnce) {
  auto fixture = MakeRandomProblem(92, 3, 10);
  // Shrink to 3 configurations for an exactly countable space.
  fixture->problem.candidates = fixture->problem.candidates.Prefix(3);
  auto graph = SequenceGraph::Build(fixture->problem);
  ASSERT_TRUE(graph.ok());
  PathRanker ranker(*graph);
  std::set<std::vector<SequenceGraph::NodeId>> seen;
  int count = 0;
  while (auto path = ranker.Next()) {
    EXPECT_TRUE(seen.insert(path->nodes).second) << "duplicate path";
    ++count;
    ASSERT_LE(count, 100);
  }
  EXPECT_EQ(count, 27);  // 3^3 distinct schedules.
}

TEST(SolveByRankingTest, MatchesKAwareOptimum) {
  for (uint64_t seed = 93; seed < 97; ++seed) {
    auto fixture = MakeRandomProblem(seed, 4, 10);
    for (int64_t k = 0; k <= 3; ++k) {
      auto ranked = SolveByRanking(fixture->problem, k);
      auto optimal = SolveKAware(fixture->problem, k);
      ASSERT_TRUE(ranked.ok()) << "seed " << seed << " k " << k;
      ASSERT_TRUE(optimal.ok());
      EXPECT_NEAR(ranked->total_cost, optimal->total_cost, 1e-6)
          << "seed " << seed << " k " << k;
      EXPECT_LE(CountChanges(fixture->problem, ranked->configs), k);
    }
  }
}

TEST(SolveByRankingTest, FirstPathWinsWhenUnconstrainedFitsK) {
  auto fixture = MakeRandomProblem(98, 5, 12);
  auto unconstrained = SolveUnconstrained(fixture->problem);
  ASSERT_TRUE(unconstrained.ok());
  const int64_t l = CountChanges(fixture->problem, unconstrained->configs);
  SolveStats stats;
  auto ranked = SolveByRanking(fixture->problem, l, 1'000'000, &stats);
  ASSERT_TRUE(ranked.ok());
  EXPECT_EQ(stats.paths_enumerated, 1);
}

TEST(SolveByRankingTest, SmallKRanksMorePaths) {
  auto fixture = MakeRandomProblem(99, 5, 12);
  SolveStats loose;
  SolveStats tight;
  ASSERT_TRUE(SolveByRanking(fixture->problem, 4, 1'000'000, &loose).ok());
  ASSERT_TRUE(SolveByRanking(fixture->problem, 0, 1'000'000, &tight).ok());
  EXPECT_GE(tight.paths_enumerated, loose.paths_enumerated);
}

TEST(SolveByRankingTest, MaxPathsGuardDegradesToStaticBestEffort) {
  auto fixture = MakeRandomProblem(100, 5, 12);
  SolveStats stats;
  auto ranked =
      SolveByRanking(fixture->problem, 0, /*max_paths=*/1, &stats);
  // k=0 is always satisfiable here (count_initial_change is off), so
  // even when the one ranked path misses the bound, the static
  // fallback must answer — never ResourceExhausted.
  ASSERT_TRUE(ranked.ok()) << ranked.status().ToString();
  EXPECT_LE(CountChanges(fixture->problem, ranked->configs), 0);
  EXPECT_NEAR(ranked->total_cost,
              EvaluateScheduleCost(fixture->problem, ranked->configs), 1e-9);
  if (stats.best_effort) {
    // The guard fired: the answer is the static fallback, flagged as
    // best-effort but NOT as a deadline hit (no budget was given).
    EXPECT_EQ(stats.paths_enumerated, 1);
    EXPECT_FALSE(stats.deadline_hit);
  } else {
    // The very first ranked path already satisfied k=0.
    EXPECT_EQ(stats.paths_enumerated, 1);
  }
}

TEST(SolveByRankingTest, RejectsNegativeK) {
  auto fixture = MakeRandomProblem(101, 3, 10);
  EXPECT_EQ(SolveByRanking(fixture->problem, -1).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace cdpd
