#include "core/online_tuner.h"

#include <gtest/gtest.h>

#include "advisor/config_enumeration.h"
#include "core/unconstrained_optimizer.h"
#include "cost/what_if.h"
#include "workload/standard_workloads.h"

namespace cdpd {
namespace {

class OnlineTunerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = MakePaperSchema();
    model_ = std::make_unique<CostModel>(schema_, 200'000, 500'000);
    ConfigEnumOptions enum_options;
    enum_options.max_indexes_per_config = 1;
    enum_options.num_rows = model_->num_rows();
    configs_ = EnumerateConfigurations(MakePaperCandidateIndexes(schema_),
                                       enum_options)
                   .value();
  }

  std::vector<BoundStatement> UniformQueries(ColumnId column, size_t count) {
    std::vector<BoundStatement> out;
    for (size_t i = 0; i < count; ++i) {
      out.push_back(BoundStatement::SelectPoint(
          column, column, static_cast<Value>(i % 1000)));
    }
    return out;
  }

  Schema schema_;
  std::unique_ptr<CostModel> model_;
  std::vector<Configuration> configs_;
};

TEST_F(OnlineTunerTest, AdoptsAnIndexForAStableWorkload) {
  OnlineTunerOptions options;
  options.window = 500;
  options.epoch = 100;
  OnlineTuner tuner(model_.get(), configs_, options);
  tuner.ProcessAll(UniformQueries(0, 2000));
  EXPECT_EQ(tuner.stats().changes, 1);
  EXPECT_TRUE(tuner.active_configuration().Contains(IndexDef({0})) ||
              tuner.active_configuration().Contains(IndexDef({0, 1})));
}

TEST_F(OnlineTunerTest, ReactsToAWorkloadShiftWithLag) {
  OnlineTunerOptions options;
  options.window = 400;
  options.epoch = 100;
  OnlineTuner tuner(model_.get(), configs_, options);
  tuner.ProcessAll(UniformQueries(0, 1000));
  const Configuration after_phase1 = tuner.active_configuration();
  EXPECT_TRUE(after_phase1.Contains(IndexDef({0})) ||
              after_phase1.Contains(IndexDef({0, 1})));
  tuner.ProcessAll(UniformQueries(2, 1000));
  const Configuration after_phase2 = tuner.active_configuration();
  EXPECT_TRUE(after_phase2.Contains(IndexDef({2})) ||
              after_phase2.Contains(IndexDef({2, 3})));
  ASSERT_EQ(tuner.change_log().size(), 2u);
  // The reaction to the shift at statement 1000 happens strictly after
  // it — the lag an off-line advisor does not pay.
  EXPECT_GT(tuner.change_log()[1].first, 1000u);
}

TEST_F(OnlineTunerTest, HysteresisPreventsThrashingOnFastAlternation) {
  OnlineTunerOptions options;
  options.window = 800;
  options.epoch = 100;
  options.switch_threshold = 1.5;
  OnlineTuner tuner(model_.get(), configs_, options);
  // Alternate a/c every 50 statements: the window mixes both, so no
  // single-column index dominates enough to keep re-switching.
  for (int round = 0; round < 40; ++round) {
    tuner.ProcessAll(UniformQueries(round % 2 == 0 ? 0 : 2, 50));
  }
  EXPECT_LE(tuner.stats().changes, 3);
}

TEST_F(OnlineTunerTest, RespectsSpaceBoundAndMaxIndexes) {
  OnlineTunerOptions options;
  options.window = 300;
  options.epoch = 100;
  options.space_bound_pages = IndexDef({0}).SizePages(200'000) + 1;
  OnlineTuner tuner(model_.get(), configs_, options);
  tuner.ProcessAll(UniformQueries(0, 1000));
  // The two-column index exceeds the bound; only I(a) fits.
  EXPECT_EQ(tuner.active_configuration(), Configuration({IndexDef({0})}));
}

TEST_F(OnlineTunerTest, AccumulatesExecutionAndTransitionCosts) {
  OnlineTunerOptions options;
  options.window = 200;
  options.epoch = 100;
  OnlineTuner tuner(model_.get(), configs_, options);
  tuner.ProcessAll(UniformQueries(1, 600));
  EXPECT_GT(tuner.stats().execution_cost, 0.0);
  EXPECT_GT(tuner.stats().transition_cost, 0.0);
  EXPECT_NEAR(tuner.stats().total_cost(),
              tuner.stats().execution_cost + tuner.stats().transition_cost,
              1e-9);
}

TEST_F(OnlineTunerTest, OfflineAdvisorWithForesightWinsOnW1) {
  // The structural comparison of the paper's §1: the off-line advisor
  // knows the whole trace in advance; the reactive tuner pays lag and
  // hindsight-only decisions.
  WorkloadGenerator gen(schema_, 500'000, 61);
  Workload w1 = MakeScaledPaperWorkload("W1", 200, &gen).value();

  OnlineTunerOptions options;
  options.window = 400;
  options.epoch = 100;
  OnlineTuner tuner(model_.get(), configs_, options);
  tuner.ProcessAll(w1.statements);

  WhatIfEngine what_if(model_.get(), w1.Span(),
                       SegmentFixed(w1.size(), 200));
  DesignProblem problem;
  problem.what_if = &what_if;
  problem.candidates = configs_;
  problem.initial = Configuration::Empty();
  auto offline = SolveUnconstrained(problem);
  ASSERT_TRUE(offline.ok());
  EXPECT_LT(offline->total_cost, tuner.stats().total_cost());
}

}  // namespace
}  // namespace cdpd
