// SolveStats::ToJson and its contract with the metrics round trip: a
// publish into a registry followed by FromSnapshot must reproduce the
// JSON bit-for-bit (both sides round wall time to whole microseconds),
// so external consumers of the metrics export and in-process callers
// serialize identical numbers.

#include "core/solve_stats.h"

#include <string>

#include <gtest/gtest.h>

#include "common/metrics.h"

namespace cdpd {
namespace {

SolveStats MakeStats() {
  SolveStats stats;
  stats.wall_seconds = 0.123456789;  // Rounds to 123457 us.
  stats.cpu_seconds = 0.5;           // 500000 us exactly.
  stats.costings = 1200;
  stats.cost_cache_hits = 340;
  stats.cost_cache_misses = 12;
  stats.cost_cache_evictions = 2;
  stats.threads_used = 8;
  stats.nodes_expanded = 77;
  stats.relaxations = 13;
  stats.paths_enumerated = 5;
  stats.merge_steps = 4;
  stats.candidate_evaluations = 9;
  stats.pruned_configs = 3;
  stats.segment_chunks = 6;
  stats.stitch_window = 5;
  stats.deadline_hit = true;
  stats.best_effort = true;
  stats.peak_bytes_total = 4096;
  stats.component_peak_bytes[static_cast<size_t>(
      MemComponent::kCostMatrix)] = 1024;
  stats.component_peak_bytes[static_cast<size_t>(
      MemComponent::kKAwareTable)] = 3072;
  stats.memory_limit_hit = true;
  return stats;
}

TEST(SolveStatsTest, ToJsonEmitsEveryFieldWithMicrosecondRounding) {
  const std::string json = MakeStats().ToJson();
  EXPECT_NE(json.find("\"wall_us\": 123457"), std::string::npos);
  EXPECT_NE(json.find("\"costings\": 1200"), std::string::npos);
  EXPECT_NE(json.find("\"cost_cache_hits\": 340"), std::string::npos);
  EXPECT_NE(json.find("\"cost_cache_misses\": 12"), std::string::npos);
  EXPECT_NE(json.find("\"cost_cache_evictions\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"threads_used\": 8"), std::string::npos);
  EXPECT_NE(json.find("\"nodes_expanded\": 77"), std::string::npos);
  EXPECT_NE(json.find("\"relaxations\": 13"), std::string::npos);
  EXPECT_NE(json.find("\"paths_enumerated\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"merge_steps\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"candidate_evaluations\": 9"), std::string::npos);
  EXPECT_NE(json.find("\"pruned_configs\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"segment_chunks\": 6"), std::string::npos);
  EXPECT_NE(json.find("\"stitch_window\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"deadline_hit\": true"), std::string::npos);
  EXPECT_NE(json.find("\"best_effort\": true"), std::string::npos);
  EXPECT_NE(json.find("\"cpu_us\": 500000"), std::string::npos);
  EXPECT_NE(json.find("\"peak_bytes_total\": 4096"), std::string::npos);
  EXPECT_NE(json.find("\"peak_bytes_cost_matrix\": 1024"), std::string::npos);
  EXPECT_NE(json.find("\"peak_bytes_kaware_table\": 3072"),
            std::string::npos);
  EXPECT_NE(json.find("\"memory_limit_hit\": true"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(SolveStatsTest, DefaultStatsSerializeAsZeros) {
  const std::string json = SolveStats{}.ToJson();
  EXPECT_NE(json.find("\"wall_us\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"threads_used\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"deadline_hit\": false"), std::string::npos);
  EXPECT_NE(json.find("\"best_effort\": false"), std::string::npos);
}

TEST(SolveStatsTest, JsonSurvivesThePublishSnapshotRoundTripBitForBit) {
  const SolveStats stats = MakeStats();
  MetricsRegistry registry;
  stats.PublishTo(&registry);
  const SolveStats back = SolveStats::FromSnapshot(registry.Snapshot());
  // Wall time crosses the boundary as integer microseconds, so the
  // reconstructed JSON is byte-identical even though wall_seconds
  // itself changed (0.123456789 -> 0.123457).
  EXPECT_EQ(back.ToJson(), stats.ToJson());
  EXPECT_NE(back.wall_seconds, stats.wall_seconds);
}

TEST(SolveStatsTest, AccumulatedSolvesSerializeTheirSums) {
  MetricsRegistry registry;
  SolveStats first;
  first.wall_seconds = 0.25;
  first.costings = 100;
  first.threads_used = 2;
  first.pruned_configs = 2;
  first.segment_chunks = 8;
  first.stitch_window = 3;
  SolveStats second;
  second.wall_seconds = 0.5;
  second.costings = 50;
  second.threads_used = 4;
  second.pruned_configs = 3;
  second.segment_chunks = 4;
  second.stitch_window = 5;
  first.PublishTo(&registry);
  second.PublishTo(&registry);

  SolveStats summed = first;
  summed.Accumulate(second);
  const SolveStats back = SolveStats::FromSnapshot(registry.Snapshot());
  // The registry accumulates exactly like Accumulate: counters add,
  // shape gauges (threads_used, segment_chunks, stitch_window) keep
  // the max — so the JSON views agree.
  EXPECT_EQ(summed.pruned_configs, 5);
  EXPECT_EQ(summed.segment_chunks, 8);
  EXPECT_EQ(summed.stitch_window, 5);
  EXPECT_EQ(back.ToJson(), summed.ToJson());
}

}  // namespace
}  // namespace cdpd
