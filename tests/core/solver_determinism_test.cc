// Determinism across thread counts: every method must produce a
// byte-identical schedule, exactly equal total cost, and the same
// what-if costing count whether Solve() runs serially or on 8 workers.
// This is the contract that makes the parallel what-if evaluation
// safe to enable by default.

#include <cstdlib>
#include <memory>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/tracing.h"
#include "core/solver.h"
#include "test_util.h"
#include "workload/standard_workloads.h"

namespace cdpd {
namespace {

using testing_util::MakeRandomProblem;
using testing_util::ProblemFixture;

/// Solves `method` with `threads` workers on a FRESH fixture (cold
/// what-if memo), so costing counts are comparable across runs.
/// `metrics`/`tracer` attach observability sinks, which must never
/// change the outcome.
SolveResult SolveFresh(uint64_t seed, OptimizerMethod method,
                       std::optional<int64_t> k, int threads,
                       MetricsRegistry* metrics = nullptr,
                       Tracer* tracer = nullptr) {
  std::unique_ptr<ProblemFixture> fixture = MakeRandomProblem(seed, 8, 12);
  SolveOptions options;
  options.method = method;
  options.k = k;
  options.num_threads = threads;
  options.observability.metrics = metrics;
  options.observability.tracer = tracer;
  if (method == OptimizerMethod::kGreedySeq) {
    options.greedy.candidate_indexes =
        MakePaperCandidateIndexes(fixture->schema);
    options.greedy.max_indexes_per_config = 1;
  }
  auto result = Solve(fixture->problem, options);
  EXPECT_TRUE(result.ok())
      << OptimizerMethodToString(method) << ": " << result.status();
  return std::move(result).value();
}

class SolverDeterminismTest
    : public ::testing::TestWithParam<OptimizerMethod> {};

TEST_P(SolverDeterminismTest, SerialAndEightThreadsAgreeExactly) {
  const OptimizerMethod method = GetParam();
  const std::optional<int64_t> bounds[] = {std::nullopt, 0, 2, 4};
  for (const std::optional<int64_t>& k : bounds) {
    const int64_t k_label = k.value_or(-1);  // -1 = unconstrained, log only.
    const SolveResult serial = SolveFresh(301, method, k, /*threads=*/1);
    const SolveResult parallel = SolveFresh(301, method, k, /*threads=*/8);
    // Byte-identical schedules and *exact* (not approximate) costs:
    // the parallel sweeps must take the same argmin decisions.
    EXPECT_EQ(serial.schedule.configs, parallel.schedule.configs)
        << OptimizerMethodToString(method) << " k=" << k_label;
    EXPECT_EQ(serial.schedule.total_cost, parallel.schedule.total_cost)
        << OptimizerMethodToString(method) << " k=" << k_label;
    // Exactly-once costing makes the work counter thread-invariant.
    EXPECT_EQ(serial.stats.costings, parallel.stats.costings)
        << OptimizerMethodToString(method) << " k=" << k_label;
    EXPECT_EQ(serial.stats.nodes_expanded, parallel.stats.nodes_expanded)
        << OptimizerMethodToString(method) << " k=" << k_label;
    EXPECT_EQ(serial.stats.threads_used, 1);
    EXPECT_EQ(parallel.stats.threads_used, 8);
  }
}

TEST_P(SolverDeterminismTest, TracingAndMetricsDoNotPerturbResults) {
  const OptimizerMethod method = GetParam();
  const SolveResult plain = SolveFresh(303, method, 2, /*threads=*/4);
  MetricsRegistry registry;
  Tracer tracer;
  const SolveResult traced =
      SolveFresh(303, method, 2, /*threads=*/4, &registry, &tracer);
  EXPECT_EQ(plain.schedule.configs, traced.schedule.configs)
      << OptimizerMethodToString(method);
  EXPECT_EQ(plain.schedule.total_cost, traced.schedule.total_cost)
      << OptimizerMethodToString(method);
  EXPECT_EQ(plain.stats.costings, traced.stats.costings)
      << OptimizerMethodToString(method);
  EXPECT_EQ(plain.stats.nodes_expanded, traced.stats.nodes_expanded)
      << OptimizerMethodToString(method);
  // The instrumented run really recorded spans and published the
  // typed snapshot whose counters match the stats it returned.
  EXPECT_GT(tracer.num_events(), 0u) << OptimizerMethodToString(method);
  EXPECT_EQ(traced.tracer, &tracer);
  const SolveStats from_registry =
      SolveStats::FromSnapshot(registry.Snapshot());
  EXPECT_EQ(from_registry.costings, traced.stats.costings);
  EXPECT_EQ(from_registry.cost_cache_hits, traced.stats.cost_cache_hits);
  EXPECT_EQ(from_registry.nodes_expanded, traced.stats.nodes_expanded);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, SolverDeterminismTest,
    ::testing::Values(OptimizerMethod::kOptimal,
                      OptimizerMethod::kGreedySeq,
                      OptimizerMethod::kMerging, OptimizerMethod::kRanking,
                      OptimizerMethod::kHybrid),
    [](const ::testing::TestParamInfo<OptimizerMethod>& info) {
      std::string name(OptimizerMethodToString(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(SolverDeterminismTest2, CdpdThreadsEnvironmentPathAgrees) {
  // num_threads = 0 resolves through CDPD_THREADS; pin it to 2 and
  // compare against an explicit serial run.
  const SolveResult serial =
      SolveFresh(302, OptimizerMethod::kOptimal, 2, /*threads=*/1);
  ASSERT_EQ(setenv("CDPD_THREADS", "2", /*overwrite=*/1), 0);
  const SolveResult env_run =
      SolveFresh(302, OptimizerMethod::kOptimal, 2, /*threads=*/0);
  ASSERT_EQ(unsetenv("CDPD_THREADS"), 0);
  EXPECT_EQ(env_run.stats.threads_used, 2);
  EXPECT_EQ(serial.schedule.configs, env_run.schedule.configs);
  EXPECT_EQ(serial.schedule.total_cost, env_run.schedule.total_cost);
  EXPECT_EQ(serial.stats.costings, env_run.stats.costings);
}

}  // namespace
}  // namespace cdpd
