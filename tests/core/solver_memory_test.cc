// The soft memory budget through the unified Solve() API: every
// method tracks its big allocations (non-zero peak on an unlimited
// solve), an over-budget solve degrades to a valid best-effort
// schedule flagged stats.memory_limit_hit instead of allocating past
// the limit, the overshoot is bounded by one block, and the limited
// path is deterministic. Runs under TSan and ASan in CI.

#include <cstdint>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "core/solver.h"
#include "core/validator.h"
#include "workload/standard_workloads.h"
#include "../test_util.h"

namespace cdpd {
namespace {

using testing_util::MakeRandomProblem;
using testing_util::ProblemFixture;

const OptimizerMethod kAllMethods[] = {
    OptimizerMethod::kOptimal, OptimizerMethod::kGreedySeq,
    OptimizerMethod::kMerging, OptimizerMethod::kRanking,
    OptimizerMethod::kHybrid,
};

SolveOptions BaseOptions(const ProblemFixture& fixture,
                         OptimizerMethod method, std::optional<int64_t> k) {
  SolveOptions options;
  options.method = method;
  options.k = k;
  options.num_threads = 1;
  if (method == OptimizerMethod::kGreedySeq) {
    options.greedy.candidate_indexes =
        MakePaperCandidateIndexes(fixture.schema);
  }
  return options;
}

TEST(SolverMemoryTest, EveryMethodTracksANonZeroPeakUnlimited) {
  auto fixture = MakeRandomProblem(/*seed=*/3, /*num_segments=*/4,
                                   /*block_size=*/10);
  for (OptimizerMethod method : kAllMethods) {
    const SolveOptions options = BaseOptions(*fixture, method, 2);
    const SolveResult result = Solve(fixture->problem, options).value();
    EXPECT_GT(result.stats.peak_bytes_total, 0)
        << OptimizerMethodToString(method);
    EXPECT_FALSE(result.stats.memory_limit_hit)
        << OptimizerMethodToString(method);
    EXPECT_FALSE(result.stats.deadline_hit)
        << OptimizerMethodToString(method);
    // The solve is over: everything reserved was released, so the
    // component gauges we copied are peaks, not leaks.
    for (int c = 0; c < kNumMemComponents; ++c) {
      EXPECT_GE(result.stats.component_peak_bytes[c], 0);
    }
  }
}

TEST(SolverMemoryTest, UnconstrainedSolveAlsoTracks) {
  auto fixture = MakeRandomProblem(/*seed=*/5, /*num_segments=*/3,
                                   /*block_size=*/10);
  SolveOptions options;
  options.method = OptimizerMethod::kOptimal;  // No k.
  options.num_threads = 1;
  const SolveResult result = Solve(fixture->problem, options).value();
  EXPECT_GT(result.stats.peak_bytes_total, 0);
  EXPECT_GT(result.stats.component_peak_bytes[static_cast<size_t>(
                MemComponent::kSequenceGraph)],
            0);
}

TEST(SolverMemoryTest, TinyLimitDegradesToValidBestEffortEverywhere) {
  auto fixture = MakeRandomProblem(/*seed=*/3, /*num_segments=*/4,
                                   /*block_size=*/10);
  // Below even the dense cost matrix of this tiny problem: every
  // method must refuse its big allocations and fall back, never
  // error, never allocate past the budget by more than the one
  // (small, unconditional) block that trips the flag.
  constexpr int64_t kLimit = 512;
  constexpr int64_t kOneBlockSlack = 4096;
  for (OptimizerMethod method : kAllMethods) {
    SolveOptions options = BaseOptions(*fixture, method, 2);
    options.memory_limit_bytes = kLimit;
    const Result<SolveResult> solved = Solve(fixture->problem, options);
    ASSERT_TRUE(solved.ok()) << OptimizerMethodToString(method) << ": "
                             << solved.status().ToString();
    const SolveResult& result = *solved;
    EXPECT_TRUE(result.stats.memory_limit_hit)
        << OptimizerMethodToString(method);
    EXPECT_TRUE(result.stats.best_effort) << OptimizerMethodToString(method);
    EXPECT_TRUE(result.stats.deadline_hit)
        << OptimizerMethodToString(method);
    EXPECT_LE(result.stats.peak_bytes_total, kLimit + kOneBlockSlack)
        << OptimizerMethodToString(method);
    // Best-effort is still a *solution*: right length, candidates
    // only, within the change bound, cost consistent with the oracle.
    // GREEDY-SEQ searches its own reduced configuration set, so it is
    // validated against that set (exactly what the advisor does).
    DesignProblem validated = fixture->problem;
    if (!result.reduced_candidates.empty()) {
      validated.candidates = result.reduced_candidates;
    }
    EXPECT_TRUE(ValidateSchedule(validated, result.schedule, options.k).ok())
        << OptimizerMethodToString(method);
  }
}

TEST(SolverMemoryTest, LimitedSolveCostsNoLessThanUnlimited) {
  auto fixture = MakeRandomProblem(/*seed=*/9, /*num_segments=*/4,
                                   /*block_size=*/10);
  SolveOptions unlimited = BaseOptions(*fixture, OptimizerMethod::kOptimal, 2);
  const double optimal_cost =
      Solve(fixture->problem, unlimited).value().schedule.total_cost;
  SolveOptions limited = unlimited;
  limited.memory_limit_bytes = 1024;
  const SolveResult degraded = Solve(fixture->problem, limited).value();
  EXPECT_TRUE(degraded.stats.memory_limit_hit);
  // The fallback is the best static schedule — feasible but never
  // better than the DP optimum.
  EXPECT_GE(degraded.schedule.total_cost, optimal_cost - 1e-9);
}

TEST(SolverMemoryTest, GenerousLimitChangesNothing) {
  auto fixture = MakeRandomProblem(/*seed=*/3, /*num_segments=*/4,
                                   /*block_size=*/10);
  for (OptimizerMethod method : kAllMethods) {
    SolveOptions plain = BaseOptions(*fixture, method, 2);
    SolveOptions roomy = plain;
    roomy.memory_limit_bytes = int64_t{1} << 40;  // 1 TiB: never binds.
    const SolveResult a = Solve(fixture->problem, plain).value();
    const SolveResult b = Solve(fixture->problem, roomy).value();
    EXPECT_FALSE(b.stats.memory_limit_hit);
    EXPECT_EQ(a.schedule.configs, b.schedule.configs)
        << OptimizerMethodToString(method);
    EXPECT_EQ(a.schedule.total_cost, b.schedule.total_cost)
        << OptimizerMethodToString(method);
  }
}

TEST(SolverMemoryTest, LimitedSolveIsDeterministic) {
  auto fixture = MakeRandomProblem(/*seed=*/13, /*num_segments=*/4,
                                   /*block_size=*/10);
  SolveOptions options = BaseOptions(*fixture, OptimizerMethod::kOptimal, 2);
  options.memory_limit_bytes = 1024;
  const SolveResult first = Solve(fixture->problem, options).value();
  const SolveResult second = Solve(fixture->problem, options).value();
  EXPECT_EQ(first.schedule.configs, second.schedule.configs);
  EXPECT_EQ(first.schedule.total_cost, second.schedule.total_cost);
  EXPECT_EQ(first.stats.memory_limit_hit, second.stats.memory_limit_hit);
}

TEST(SolverMemoryTest, InvalidLimitIsRejected) {
  auto fixture = MakeRandomProblem(/*seed=*/3, /*num_segments=*/2,
                                   /*block_size=*/5);
  SolveOptions options = BaseOptions(*fixture, OptimizerMethod::kOptimal, 1);
  options.memory_limit_bytes = 0;
  EXPECT_FALSE(Solve(fixture->problem, options).ok());
  options.memory_limit_bytes = -1;
  EXPECT_FALSE(Solve(fixture->problem, options).ok());
}

TEST(SolverMemoryTest, StatsAndMetricsCarryTheMemoryTelemetry) {
  auto fixture = MakeRandomProblem(/*seed=*/3, /*num_segments=*/4,
                                   /*block_size=*/10);
  MetricsRegistry registry;
  SolveOptions options = BaseOptions(*fixture, OptimizerMethod::kOptimal, 2);
  options.observability.metrics = &registry;
  const SolveResult result = Solve(fixture->problem, options).value();
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.GaugeValue("solver.peak_bytes_total"),
            result.stats.peak_bytes_total);
  EXPECT_EQ(snapshot.GaugeValue("mem.peak_bytes_total"),
            result.stats.peak_bytes_total);
  EXPECT_EQ(snapshot.CounterValue("solver.memory_limit_hit"), 0);
  EXPECT_GE(result.stats.cpu_seconds, 0.0);
#if defined(__linux__)
  EXPECT_GT(snapshot.GaugeValue("process.rss_bytes"), 0);
#endif
  // The JSON view carries the same numbers.
  const std::string json = result.stats.ToJson();
  EXPECT_NE(json.find("\"peak_bytes_total\": " +
                      std::to_string(result.stats.peak_bytes_total)),
            std::string::npos);
  EXPECT_NE(json.find("\"memory_limit_hit\": false"), std::string::npos);
}

TEST(SolverMemoryTest, MemoryLimitHitRoundTripsThroughMetrics) {
  auto fixture = MakeRandomProblem(/*seed=*/3, /*num_segments=*/4,
                                   /*block_size=*/10);
  MetricsRegistry registry;
  SolveOptions options = BaseOptions(*fixture, OptimizerMethod::kOptimal, 2);
  options.observability.metrics = &registry;
  options.memory_limit_bytes = 1024;
  const SolveResult result = Solve(fixture->problem, options).value();
  ASSERT_TRUE(result.stats.memory_limit_hit);
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_GE(snapshot.CounterValue("solver.memory_limit_hit"), 1);
  EXPECT_GE(snapshot.CounterValue("mem.limit_exceeded"), 1);
  const SolveStats back = SolveStats::FromSnapshot(snapshot);
  EXPECT_TRUE(back.memory_limit_hit);
  EXPECT_EQ(back.peak_bytes_total, result.stats.peak_bytes_total);
}

}  // namespace
}  // namespace cdpd
