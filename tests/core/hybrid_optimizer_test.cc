#include "core/hybrid_optimizer.h"

#include <gtest/gtest.h>

#include "core/k_aware_graph.h"
#include "core/unconstrained_optimizer.h"
#include "test_util.h"

namespace cdpd {
namespace {

using testing_util::MakeRandomProblem;

TEST(HybridOptimizerTest, ReturnsUnconstrainedWhenItFits) {
  auto fixture = MakeRandomProblem(110, 6, 15);
  auto unconstrained = SolveUnconstrained(fixture->problem);
  ASSERT_TRUE(unconstrained.ok());
  const int64_t l = CountChanges(fixture->problem, unconstrained->configs);
  auto hybrid = SolveHybrid(fixture->problem, l);
  ASSERT_TRUE(hybrid.ok());
  EXPECT_EQ(hybrid->choice, HybridChoice::kUnconstrainedSufficed);
  EXPECT_EQ(hybrid->unconstrained_changes, l);
  EXPECT_NEAR(hybrid->schedule.total_cost, unconstrained->total_cost, 1e-9);
}

TEST(HybridOptimizerTest, AlwaysSatisfiesConstraint) {
  auto fixture = MakeRandomProblem(111, 10, 12);
  for (int64_t k = 0; k <= 6; ++k) {
    auto hybrid = SolveHybrid(fixture->problem, k);
    ASSERT_TRUE(hybrid.ok()) << "k=" << k;
    EXPECT_LE(CountChanges(fixture->problem, hybrid->schedule.configs), k);
  }
}

TEST(HybridOptimizerTest, SmallKUsesGraphAndIsOptimal) {
  // Force a large l by making every segment prefer a different config,
  // then ask for k = 0: graph work (1*n*|C|^2) ~ merging work only if
  // l is large; with n small the graph side wins.
  auto fixture = MakeRandomProblem(112, 12, 10);
  auto hybrid = SolveHybrid(fixture->problem, 0);
  ASSERT_TRUE(hybrid.ok());
  if (hybrid->choice == HybridChoice::kKAwareGraph) {
    auto optimal = SolveKAware(fixture->problem, 0);
    ASSERT_TRUE(optimal.ok());
    EXPECT_NEAR(hybrid->schedule.total_cost, optimal->total_cost, 1e-9);
  }
}

TEST(HybridOptimizerTest, ChoiceFollowsWorkEstimates) {
  auto fixture = MakeRandomProblem(113, 12, 10);
  auto unconstrained = SolveUnconstrained(fixture->problem);
  ASSERT_TRUE(unconstrained.ok());
  const int64_t l = CountChanges(fixture->problem, unconstrained->configs);
  if (l < 2) GTEST_SKIP() << "fixture produced a trivial schedule";
  const auto n = static_cast<double>(fixture->problem.num_segments());
  const auto c = static_cast<double>(fixture->problem.candidates.size());
  for (int64_t k = 0; k < l; ++k) {
    auto hybrid = SolveHybrid(fixture->problem, k);
    ASSERT_TRUE(hybrid.ok());
    const double graph_work = static_cast<double>(k + 1) * n * c * c;
    const double merging_work =
        c * static_cast<double>(l * l - k * k) / 2.0;
    EXPECT_EQ(hybrid->choice, graph_work <= merging_work
                                  ? HybridChoice::kKAwareGraph
                                  : HybridChoice::kMerging)
        << "k=" << k;
  }
}

TEST(HybridOptimizerTest, RejectsNegativeK) {
  auto fixture = MakeRandomProblem(114, 3, 10);
  EXPECT_EQ(SolveHybrid(fixture->problem, -1).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(HybridOptimizerTest, ChoiceNamesAreStable) {
  EXPECT_EQ(HybridChoiceToString(HybridChoice::kUnconstrainedSufficed),
            "unconstrained");
  EXPECT_EQ(HybridChoiceToString(HybridChoice::kKAwareGraph),
            "k-aware-graph");
  EXPECT_EQ(HybridChoiceToString(HybridChoice::kMerging), "merging");
}

}  // namespace
}  // namespace cdpd
