#include "core/segment_solver.h"

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/k_aware_graph.h"
#include "core/solver.h"
#include "test_util.h"
#include "workload/workload.h"

namespace cdpd {
namespace {

using testing_util::MakeRandomProblem;

TEST(SegmentSolveOptionsTest, Validate) {
  SegmentSolveOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.num_chunks = -1;
  EXPECT_FALSE(options.Validate().ok());
  options.num_chunks = 0;
  options.min_chunk_stages = 0;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(SegmentSolveOptionsTest, ResolveNumChunks) {
  SegmentSolveOptions options;  // Auto, min_chunk_stages = 128.
  // Too short to amortize chunking.
  EXPECT_EQ(ResolveNumChunks(options, 0), 1u);
  EXPECT_EQ(ResolveNumChunks(options, 100), 1u);
  EXPECT_EQ(ResolveNumChunks(options, 255), 1u);
  // Long enough: one chunk per ~min_chunk_stages stages.
  EXPECT_EQ(ResolveNumChunks(options, 256), 2u);
  EXPECT_EQ(ResolveNumChunks(options, 1280), 10u);
  // Capped.
  EXPECT_EQ(ResolveNumChunks(options, 1'000'000),
            SegmentSolveOptions::kMaxAutoChunks);
  // Monolithic off-switch.
  options.num_chunks = 1;
  EXPECT_EQ(ResolveNumChunks(options, 1'000'000), 1u);
  // Forced counts clamp to the stage count.
  options.num_chunks = 4;
  EXPECT_EQ(ResolveNumChunks(options, 100), 4u);
  EXPECT_EQ(ResolveNumChunks(options, 3), 3u);
  EXPECT_EQ(ResolveNumChunks(options, 1), 1u);
}

TEST(SplitStagesBalancedTest, CoversExactlyAndBalances) {
  const std::vector<Segment> stages = SegmentFixed(1000, 10);  // 100 stages.
  for (size_t chunks : {1u, 2u, 3u, 7u, 100u, 200u}) {
    const std::vector<Segment> split = SplitStagesBalanced(stages, chunks);
    ASSERT_EQ(split.size(), std::min<size_t>(chunks, stages.size()));
    EXPECT_EQ(split.front().begin, 0u);
    EXPECT_EQ(split.back().end, stages.size());
    for (size_t t = 1; t < split.size(); ++t) {
      EXPECT_EQ(split[t].begin, split[t - 1].end);
      EXPECT_GE(split[t].size(), 1u);
    }
  }
}

TEST(SplitStagesBalancedTest, BalancesByStatementWeight) {
  // Stages of very different statement counts: the cuts should track
  // statement weight, not stage count.
  std::vector<Segment> stages;
  size_t begin = 0;
  for (size_t len : {200u, 1u, 1u, 1u, 1u, 1u, 1u, 100u}) {
    stages.push_back(Segment{begin, begin + len});
    begin += len;
  }
  const std::vector<Segment> split = SplitStagesBalanced(stages, 2);
  ASSERT_EQ(split.size(), 2u);
  // The first heavy stage alone reaches half the total weight.
  EXPECT_EQ(split[0], (Segment{0, 1}));
  EXPECT_EQ(split[1], (Segment{1, 8}));
}

TEST(SegmentSolverTest, MatchesMonolithicCostForAllChunkCounts) {
  auto fixture = MakeRandomProblem(7, /*num_segments=*/24, /*block_size=*/10);
  for (int64_t k = 0; k <= 4; ++k) {
    auto mono = SolveKAware(fixture->problem, k);
    ASSERT_TRUE(mono.ok()) << mono.status().ToString();
    for (size_t chunks : {2u, 3u, 5u, 8u, 24u}) {
      SolveStats stats;
      auto seg = SolveKAwareSegmented(fixture->problem, k, chunks, &stats);
      ASSERT_TRUE(seg.ok()) << "k=" << k << " chunks=" << chunks << ": "
                            << seg.status().ToString();
      EXPECT_NEAR(seg->total_cost, mono->total_cost, 1e-9 * mono->total_cost)
          << "k=" << k << " chunks=" << chunks;
      EXPECT_LE(CountChanges(fixture->problem, seg->configs), k);
      EXPECT_EQ(stats.segment_chunks, static_cast<int64_t>(chunks));
      EXPECT_GT(stats.stitch_window, 0);
    }
  }
}

TEST(SegmentSolverTest, ScheduleIdenticalForAnyThreadCount) {
  auto fixture = MakeRandomProblem(11, /*num_segments=*/20, /*block_size=*/8);
  SolveStats serial_stats;
  auto serial =
      SolveKAwareSegmented(fixture->problem, 3, 4, &serial_stats);
  ASSERT_TRUE(serial.ok());
  for (int threads : {2, 4}) {
    ThreadPool pool(threads);
    SolveStats stats;
    auto parallel =
        SolveKAwareSegmented(fixture->problem, 3, 4, &stats, &pool);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel->configs, serial->configs) << threads << " threads";
    EXPECT_EQ(parallel->total_cost, serial->total_cost);
    EXPECT_EQ(stats.relaxations, serial_stats.relaxations);
    EXPECT_EQ(stats.nodes_expanded, serial_stats.nodes_expanded);
  }
}

TEST(SegmentSolverTest, HonorsFinalConfigAndInitialChangePolicy) {
  auto fixture = MakeRandomProblem(13, /*num_segments=*/16, /*block_size=*/8);
  fixture->problem.final_config = Configuration::Empty();
  fixture->problem.count_initial_change = true;
  for (int64_t k : {0, 1, 3}) {
    auto mono = SolveKAware(fixture->problem, k);
    ASSERT_TRUE(mono.ok()) << mono.status().ToString();
    auto seg = SolveKAwareSegmented(fixture->problem, k, 4);
    ASSERT_TRUE(seg.ok()) << seg.status().ToString();
    EXPECT_NEAR(seg->total_cost, mono->total_cost,
                1e-9 * (1.0 + mono->total_cost))
        << "k=" << k;
    EXPECT_LE(CountChanges(fixture->problem, seg->configs), k);
  }
}

TEST(SegmentSolverTest, DegenerateChunkCountsDelegateToMonolithic) {
  auto fixture = MakeRandomProblem(17, /*num_segments=*/6, /*block_size=*/10);
  auto mono = SolveKAware(fixture->problem, 2);
  ASSERT_TRUE(mono.ok());
  for (size_t chunks : {0u, 1u}) {
    auto seg = SolveKAwareSegmented(fixture->problem, 2, chunks);
    ASSERT_TRUE(seg.ok());
    EXPECT_EQ(seg->configs, mono->configs);
  }
}

TEST(SegmentSolverTest, RejectsNegativeK) {
  auto fixture = MakeRandomProblem(19, /*num_segments=*/6, /*block_size=*/10);
  auto seg = SolveKAwareSegmented(fixture->problem, -1, 2);
  EXPECT_FALSE(seg.ok());
  EXPECT_EQ(seg.status().code(), StatusCode::kInvalidArgument);
}

TEST(SegmentSolverTest, SolveDispatchesSegmentedPath) {
  // Through the unified Solve(): forcing chunks >= 2 must produce the
  // same cost as the monolithic default and report the decomposition
  // in method_detail and stats.
  auto fixture = MakeRandomProblem(23, /*num_segments=*/18, /*block_size=*/8);
  SolveOptions mono_options;
  mono_options.k = 2;
  mono_options.num_threads = 1;
  mono_options.segmented.num_chunks = 1;
  auto mono = Solve(fixture->problem, mono_options);
  ASSERT_TRUE(mono.ok());
  EXPECT_EQ(mono->stats.segment_chunks, 0);

  SolveOptions seg_options;
  seg_options.k = 2;
  seg_options.num_threads = 1;
  seg_options.segmented.num_chunks = 6;
  auto seg = Solve(fixture->problem, seg_options);
  ASSERT_TRUE(seg.ok());
  EXPECT_NEAR(seg->schedule.total_cost, mono->schedule.total_cost,
              1e-9 * mono->schedule.total_cost);
  EXPECT_EQ(seg->stats.segment_chunks, 6);
  EXPECT_NE(seg->method_detail.find("segment-parallel"), std::string::npos);
}

}  // namespace
}  // namespace cdpd
