#include "core/k_selection.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "workload/standard_workloads.h"

namespace cdpd {
namespace {

class KSelectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = MakePaperSchema();
    model_ = std::make_unique<CostModel>(schema_, 200'000, 500'000);
    WorkloadGenerator gen(schema_, 500'000, 51);
    w1_ = MakeScaledPaperWorkload("W1", kBlock, &gen).value();
  }

  KSelectionOptions BaseOptions() {
    KSelectionOptions options;
    options.advisor.block_size = kBlock;
    options.advisor.candidate_indexes = MakePaperCandidateIndexes(schema_);
    options.candidate_ks = {0, 1, 2, 4, std::nullopt};
    return options;
  }

  static constexpr size_t kBlock = 200;
  Schema schema_;
  std::unique_ptr<CostModel> model_;
  Workload w1_;
};

TEST_F(KSelectionTest, JitteredVariantsPreserveMultisetOfStatements) {
  const auto variants = MakeJitteredVariants(w1_, kBlock, 4, 3, 9);
  ASSERT_EQ(variants.size(), 3u);
  for (const Workload& variant : variants) {
    ASSERT_EQ(variant.size(), w1_.size());
    // Same statements as a multiset (order differs).
    auto sort_key = [](const BoundStatement& s) {
      return std::tuple(static_cast<int>(s.type), s.select_column,
                        s.where_column, s.where_value);
    };
    std::vector<BoundStatement> a = w1_.statements;
    std::vector<BoundStatement> b = variant.statements;
    std::sort(a.begin(), a.end(), [&](const auto& x, const auto& y) {
      return sort_key(x) < sort_key(y);
    });
    std::sort(b.begin(), b.end(), [&](const auto& x, const auto& y) {
      return sort_key(x) < sort_key(y);
    });
    EXPECT_EQ(a, b);
  }
}

TEST_F(KSelectionTest, JitterKeepsBlocksWithinWindows) {
  const auto variants = MakeJitteredVariants(w1_, kBlock, 2, 1, 10);
  ASSERT_EQ(variants.size(), 1u);
  // With window 2, block i of the variant comes from block i or its
  // window sibling — so the mix label stays within the original pair.
  for (size_t block = 0; block < variants[0].block_mix_names.size();
       ++block) {
    const size_t window_begin = (block / 2) * 2;
    const std::string& label = variants[0].block_mix_names[block];
    bool found = false;
    for (size_t i = window_begin;
         i < std::min(window_begin + 2, w1_.block_mix_names.size()); ++i) {
      found |= w1_.block_mix_names[i] == label;
    }
    EXPECT_TRUE(found) << "block " << block;
  }
}

TEST_F(KSelectionTest, JitterHandlesDegenerateInputs) {
  EXPECT_TRUE(MakeJitteredVariants(Workload{}, 10, 4, 2, 1).empty());
  EXPECT_TRUE(MakeJitteredVariants(w1_, 0, 4, 2, 1).empty());
}

TEST_F(KSelectionTest, ChoosesSmallKUnderJitter) {
  // With minor-shift timing scrambled, chasing it cannot pay: the
  // chosen k must be far below the unconstrained change count.
  auto report = ChooseChangeBound(*model_, w1_, {}, BaseOptions());
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_TRUE(report->chosen_k.has_value());
  EXPECT_GE(*report->chosen_k, 0);
  EXPECT_LE(*report->chosen_k, 4);
  ASSERT_EQ(report->outcomes.size(), 5u);
  // Fit cost is monotone non-increasing in k (optimal solver).
  for (size_t i = 1; i + 1 < report->outcomes.size(); ++i) {
    EXPECT_LE(report->outcomes[i].fit_cost,
              report->outcomes[i - 1].fit_cost + 1e-6);
  }
}

TEST_F(KSelectionTest, ChoosesLargeKWhenEvalTraceIsTheTraceItself) {
  KSelectionOptions options = BaseOptions();
  auto report = ChooseChangeBound(*model_, w1_, {w1_}, options);
  ASSERT_TRUE(report.ok());
  // Fitting the evaluation trace exactly: unconstrained wins.
  EXPECT_EQ(report->chosen_k, std::nullopt);
}

TEST_F(KSelectionTest, RejectsMismatchedEvalTraceLength) {
  Workload short_trace = w1_;
  short_trace.statements.resize(100);
  EXPECT_EQ(ChooseChangeBound(*model_, w1_, {short_trace}, BaseOptions())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(KSelectionTest, RejectsEmptyCandidateKs) {
  KSelectionOptions options = BaseOptions();
  options.candidate_ks.clear();
  EXPECT_EQ(ChooseChangeBound(*model_, w1_, {}, options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(KSelectionTest, ReportToStringMarksChosenK) {
  auto report = ChooseChangeBound(*model_, w1_, {}, BaseOptions());
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->ToString().find("<-- chosen"), std::string::npos);
}

}  // namespace
}  // namespace cdpd
