// Anytime behavior of the unified Solve() entry point: deadlines and
// cooperative cancellation either yield a feasible best-effort
// schedule (stats.deadline_hit) or DeadlineExceeded — never a crash,
// never an infeasible answer — and a deadline that never fires leaves
// every method's result byte-identical to an undeadlined run.

#include <chrono>
#include <cmath>
#include <thread>

#include <gtest/gtest.h>

#include "common/budget.h"
#include "common/metrics.h"
#include "core/solver.h"
#include "core/validator.h"
#include "test_util.h"
#include "workload/standard_workloads.h"

namespace cdpd {
namespace {

using testing_util::MakeRandomProblem;

constexpr OptimizerMethod kAllMethods[] = {
    OptimizerMethod::kOptimal, OptimizerMethod::kGreedySeq,
    OptimizerMethod::kMerging, OptimizerMethod::kRanking,
    OptimizerMethod::kHybrid};

SolveOptions MethodOptions(const testing_util::ProblemFixture& fixture,
                           OptimizerMethod method, int64_t k,
                           int num_threads = 1) {
  SolveOptions options;
  options.method = method;
  options.k = k;
  options.num_threads = num_threads;
  if (method == OptimizerMethod::kGreedySeq) {
    options.greedy.candidate_indexes =
        MakePaperCandidateIndexes(fixture.schema);
    options.greedy.max_indexes_per_config = 1;
  }
  return options;
}

/// The anytime contract: a budgeted solve either returns a schedule
/// that is feasible under k (flagged deadline_hit when the budget
/// fired) or fails with DeadlineExceeded — no other status, no
/// infeasible schedule, no non-finite cost.
void ExpectAnytimeContract(const DesignProblem& problem,
                           const Result<SolveResult>& result, int64_t k,
                           OptimizerMethod method) {
  if (result.ok()) {
    EXPECT_EQ(result->schedule.configs.size(), problem.num_segments())
        << OptimizerMethodToString(method);
    EXPECT_LE(CountChanges(problem, result->schedule.configs), k)
        << OptimizerMethodToString(method);
    EXPECT_TRUE(std::isfinite(result->schedule.total_cost))
        << OptimizerMethodToString(method);
    EXPECT_NEAR(result->schedule.total_cost,
                EvaluateScheduleCost(problem, result->schedule.configs), 1e-6)
        << OptimizerMethodToString(method);
  } else {
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
        << OptimizerMethodToString(method) << ": " << result.status();
  }
}

TEST(SolverDeadlineTest, ZeroDeadlineFeasibleOrDeadlineExceeded) {
  auto fixture = MakeRandomProblem(301, 8, 12);
  for (OptimizerMethod method : kAllMethods) {
    SolveOptions options = MethodOptions(*fixture, method, 2);
    options.deadline = std::chrono::milliseconds(0);
    auto result = Solve(fixture->problem, options);
    ExpectAnytimeContract(fixture->problem, result, 2, method);
    if (result.ok()) {
      EXPECT_TRUE(result->stats.deadline_hit)
          << OptimizerMethodToString(method);
      EXPECT_TRUE(result->stats.best_effort)
          << OptimizerMethodToString(method);
    }
  }
}

TEST(SolverDeadlineTest, ShortDeadlineSweepHoldsTheContract) {
  auto fixture = MakeRandomProblem(302, 10, 12);
  for (OptimizerMethod method : kAllMethods) {
    for (int64_t deadline_ms : {0, 1, 2, 5}) {
      SolveOptions options = MethodOptions(*fixture, method, 3);
      options.deadline = std::chrono::milliseconds(deadline_ms);
      auto result = Solve(fixture->problem, options);
      ExpectAnytimeContract(fixture->problem, result, 3, method);
    }
  }
}

TEST(SolverDeadlineTest, GenerousDeadlineIsByteIdentical) {
  auto fixture = MakeRandomProblem(303, 8, 12);
  CancelToken never_cancelled;
  for (OptimizerMethod method : kAllMethods) {
    for (int num_threads : {1, 4}) {
      SolveOptions plain = MethodOptions(*fixture, method, 2, num_threads);
      auto reference = Solve(fixture->problem, plain);
      ASSERT_TRUE(reference.ok()) << OptimizerMethodToString(method);

      SolveOptions budgeted = plain;
      budgeted.deadline = std::chrono::minutes(10);
      budgeted.cancel = &never_cancelled;
      auto result = Solve(fixture->problem, budgeted);
      ASSERT_TRUE(result.ok()) << OptimizerMethodToString(method);

      EXPECT_EQ(result->schedule.configs, reference->schedule.configs)
          << OptimizerMethodToString(method) << " threads " << num_threads;
      EXPECT_EQ(result->schedule.total_cost, reference->schedule.total_cost)
          << OptimizerMethodToString(method) << " threads " << num_threads;
      EXPECT_FALSE(result->stats.deadline_hit)
          << OptimizerMethodToString(method);
      EXPECT_EQ(result->stats.best_effort, reference->stats.best_effort)
          << OptimizerMethodToString(method);
    }
  }
}

TEST(SolverDeadlineTest, PreCancelledTokenBehavesLikeExpiredDeadline) {
  auto fixture = MakeRandomProblem(304, 8, 12);
  CancelToken token;
  token.Cancel();
  for (OptimizerMethod method : kAllMethods) {
    SolveOptions options = MethodOptions(*fixture, method, 2);
    options.cancel = &token;
    auto result = Solve(fixture->problem, options);
    ExpectAnytimeContract(fixture->problem, result, 2, method);
    if (result.ok()) {
      EXPECT_TRUE(result->stats.deadline_hit)
          << OptimizerMethodToString(method);
    }
  }
}

TEST(SolverDeadlineTest, CancellationFromAnotherThreadMidSolve) {
  // A problem big enough that the solve usually straddles the cancel;
  // the assertions hold for every interleaving (cancel before, during,
  // or after the solve), and the test doubles as the TSan probe for
  // the token's cross-thread handoff into the pooled precompute.
  auto fixture = MakeRandomProblem(305, 24, 14, /*max_indexes_per_config=*/2);
  for (OptimizerMethod method :
       {OptimizerMethod::kOptimal, OptimizerMethod::kMerging,
        OptimizerMethod::kRanking}) {
    CancelToken token;
    SolveOptions options = MethodOptions(*fixture, method, 2,
                                         /*num_threads=*/4);
    options.cancel = &token;
    std::thread canceller([&token] {
      std::this_thread::sleep_for(std::chrono::microseconds(300));
      token.Cancel();
    });
    auto result = Solve(fixture->problem, options);
    canceller.join();
    ExpectAnytimeContract(fixture->problem, result, 2, method);
  }
}

TEST(SolverDeadlineTest, DeadlineHitIsPublishedAsAMetric) {
  auto fixture = MakeRandomProblem(306, 8, 12);
  // GREEDY-SEQ always has a feasible fallback (the reduced set keeps
  // the initial configuration), so a zero deadline yields a flagged
  // best-effort schedule rather than DeadlineExceeded.
  SolveOptions options = MethodOptions(*fixture, OptimizerMethod::kGreedySeq, 2);
  options.deadline = std::chrono::milliseconds(0);
  MetricsRegistry metrics;
  options.observability.metrics = &metrics;
  auto result = Solve(fixture->problem, options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->stats.deadline_hit);
  MetricsSnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("solver.deadline_hit"), 1);
  EXPECT_EQ(snapshot.CounterValue("solver.best_effort"), 1);
}

TEST(SolverDeadlineTest, NegativeDeadlineIsRejected) {
  auto fixture = MakeRandomProblem(307, 4, 10);
  SolveOptions options = MethodOptions(*fixture, OptimizerMethod::kOptimal, 2);
  options.deadline = std::chrono::milliseconds(-1);
  auto result = Solve(fixture->problem, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SolverDeadlineTest, BudgetedSchedulesStillValidate) {
  auto fixture = MakeRandomProblem(308, 10, 12);
  for (OptimizerMethod method : kAllMethods) {
    SolveOptions options = MethodOptions(*fixture, method, 2);
    options.deadline = std::chrono::milliseconds(1);
    auto result = Solve(fixture->problem, options);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
      continue;
    }
    EXPECT_TRUE(
        ValidateSchedule(fixture->problem, result->schedule, 2).ok())
        << OptimizerMethodToString(method);
  }
}

}  // namespace
}  // namespace cdpd
