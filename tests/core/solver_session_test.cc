#include "core/solver_session.h"

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "test_util.h"

namespace cdpd {
namespace {

using testing_util::MakeRandomProblem;

TEST(SessionOptionsTest, Validate) {
  SessionOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.num_threads = -1;
  EXPECT_FALSE(options.Validate().ok());
  options.num_threads = 0;
  options.cost_cache_max_bytes = -1;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(SolverSessionTest, MatchesFreeSolve) {
  auto fixture = MakeRandomProblem(31, /*num_segments=*/6, /*block_size=*/10);
  SolveOptions options;
  options.k = 2;
  options.num_threads = 1;

  auto direct = Solve(fixture->problem, options);
  ASSERT_TRUE(direct.ok());

  SessionOptions session_options;
  session_options.num_threads = 1;
  SolverSession session(session_options);
  auto via_session = session.Solve(fixture->problem, options);
  ASSERT_TRUE(via_session.ok());
  EXPECT_EQ(via_session->schedule.configs, direct->schedule.configs);
  EXPECT_EQ(via_session->schedule.total_cost, direct->schedule.total_cost);
}

TEST(SolverSessionTest, WarmCacheAndAccumulatedStatsAcrossSolves) {
  auto fixture = MakeRandomProblem(37, /*num_segments=*/6, /*block_size=*/10);
  SessionOptions session_options;
  session_options.num_threads = 1;
  SolverSession session(session_options);
  ASSERT_NE(session.cost_cache(), nullptr);
  SolveOptions options;
  options.k = 2;
  options.num_threads = 1;

  auto cold = session.Solve(fixture->problem, options);
  ASSERT_TRUE(cold.ok());
  auto warm = session.Solve(fixture->problem, options);
  ASSERT_TRUE(warm.ok());

  // The second solve costs the same schedule out of the session cache.
  EXPECT_EQ(warm->schedule.configs, cold->schedule.configs);
  EXPECT_GT(warm->stats.cost_cache_hits, 0);
  EXPECT_LT(warm->stats.costings, cold->stats.costings);

  EXPECT_EQ(session.solves(), 2);
  const SolveStats total = session.total_stats();
  EXPECT_EQ(total.costings, cold->stats.costings + warm->stats.costings);
  EXPECT_GE(total.cost_cache_hits, warm->stats.cost_cache_hits);
}

TEST(SolverSessionTest, CacheCanBeDisabled) {
  SessionOptions session_options;
  session_options.num_threads = 1;
  session_options.enable_cost_cache = false;
  SolverSession session(session_options);
  EXPECT_EQ(session.cost_cache(), nullptr);

  auto fixture = MakeRandomProblem(41, /*num_segments=*/4, /*block_size=*/10);
  SolveOptions options;
  options.num_threads = 1;
  auto first = session.Solve(fixture->problem, options);
  auto second = session.Solve(fixture->problem, options);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->stats.cost_cache_hits, 0);
}

TEST(SolverSessionTest, SessionObservabilityIsTheFallback) {
  MetricsRegistry session_metrics;
  SessionOptions session_options;
  session_options.num_threads = 1;
  session_options.observability.metrics = &session_metrics;
  SolverSession session(session_options);

  auto fixture = MakeRandomProblem(43, /*num_segments=*/4, /*block_size=*/10);
  SolveOptions options;
  options.num_threads = 1;

  // Call sets no sinks: the session registry receives the publish.
  ASSERT_TRUE(session.Solve(fixture->problem, options).ok());
  EXPECT_EQ(session_metrics.Snapshot().CounterValue("solver.solves"), 1);

  // A per-call registry wins over the session default for that slot.
  MetricsRegistry call_metrics;
  options.observability.metrics = &call_metrics;
  ASSERT_TRUE(session.Solve(fixture->problem, options).ok());
  EXPECT_EQ(call_metrics.Snapshot().CounterValue("solver.solves"), 1);
  EXPECT_EQ(session_metrics.Snapshot().CounterValue("solver.solves"), 1);
}

TEST(SolverSessionTest, InvalidOptionsAreCorrectedToDefaults) {
  SessionOptions options;
  options.num_threads = -7;
  options.cost_cache_max_bytes = -1;
  SolverSession session(options);  // Must not crash.
  auto fixture = MakeRandomProblem(47, /*num_segments=*/4, /*block_size=*/10);
  SolveOptions solve_options;
  solve_options.num_threads = 1;
  EXPECT_TRUE(session.Solve(fixture->problem, solve_options).ok());
}

}  // namespace
}  // namespace cdpd
