#include "core/k_aware_graph.h"

#include <limits>

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/unconstrained_optimizer.h"
#include "test_util.h"

namespace cdpd {
namespace {

using testing_util::MakeRandomProblem;

TEST(KAwareGraphTest, GraphSizeFormulas) {
  // Figure 2's instance: n = 3 stages, 2 configurations, k = 2.
  const KAwareGraphSize size = ComputeKAwareGraphSize(3, 2, 2);
  EXPECT_EQ(size.nodes, 3 * 3 * 2 + 2);
  // Edges: source->2, per stage gap: 3 layers * 2 stay + 2 layer-gaps
  // * 2 change, dest<-3*2. Two gaps between stages.
  EXPECT_EQ(size.edges, 2 + 2 * (3 * 2 + 2 * 2) + 3 * 2);
}

TEST(KAwareGraphTest, GraphSizeGrowsLinearlyInK) {
  const int64_t n = 30;
  const int64_t m = 7;
  const int64_t nodes_k2 = ComputeKAwareGraphSize(n, m, 2).nodes;
  const int64_t nodes_k4 = ComputeKAwareGraphSize(n, m, 4).nodes;
  const int64_t nodes_k8 = ComputeKAwareGraphSize(n, m, 8).nodes;
  EXPECT_EQ(nodes_k4 - nodes_k2, 2 * n * m);
  EXPECT_EQ(nodes_k8 - nodes_k4, 4 * n * m);
}

TEST(KAwareGraphTest, GraphSizeSaturatesInsteadOfOverflowing) {
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  // k = INT64_MAX used to compute k+1 layers with signed overflow (UB);
  // now every product/sum saturates at INT64_MAX.
  const KAwareGraphSize huge_k = ComputeKAwareGraphSize(3, 2, kMax);
  EXPECT_EQ(huge_k.nodes, kMax);
  EXPECT_EQ(huge_k.edges, kMax);
  const KAwareGraphSize huge_all =
      ComputeKAwareGraphSize(kMax, kMax, kMax);
  EXPECT_EQ(huge_all.nodes, kMax);
  EXPECT_EQ(huge_all.edges, kMax);
  // Sanity: a modest instance is still exact.
  EXPECT_EQ(ComputeKAwareGraphSize(3, 2, 2).nodes, 3 * 3 * 2 + 2);
}

TEST(KAwareGraphTest, HugeKSolvesViaLayerClamping) {
  // k beyond n-1 cannot change the answer, so the solver clamps the
  // layer count instead of allocating (or overflowing) a k+1-layer
  // table. INT64_MAX must behave exactly like k = n-1.
  auto fixture = MakeRandomProblem(48, 6, 15);
  auto unconstrained = SolveUnconstrained(fixture->problem);
  ASSERT_TRUE(unconstrained.ok());
  auto huge = SolveKAware(fixture->problem, std::numeric_limits<int64_t>::max());
  ASSERT_TRUE(huge.ok()) << huge.status().ToString();
  EXPECT_NEAR(huge->total_cost, unconstrained->total_cost, 1e-6);
  auto exact = SolveKAware(fixture->problem, 5);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(huge->configs, exact->configs);
}

TEST(KAwareGraphTest, RespectsChangeBound) {
  auto fixture = MakeRandomProblem(20, 6, 15);
  for (int64_t k = 0; k <= 4; ++k) {
    auto schedule = SolveKAware(fixture->problem, k);
    ASSERT_TRUE(schedule.ok()) << "k=" << k;
    EXPECT_LE(CountChanges(fixture->problem, schedule->configs), k);
  }
}

TEST(KAwareGraphTest, MatchesBruteForceForAllK) {
  for (uint64_t seed = 30; seed < 34; ++seed) {
    auto fixture = MakeRandomProblem(seed, /*num_segments=*/4,
                                     /*block_size=*/10);
    for (int64_t k = 0; k <= 4; ++k) {
      auto graph = SolveKAware(fixture->problem, k);
      auto brute = SolveBruteForce(fixture->problem, k);
      ASSERT_TRUE(graph.ok());
      ASSERT_TRUE(brute.ok());
      EXPECT_NEAR(graph->total_cost, brute->total_cost, 1e-6)
          << "seed " << seed << " k " << k;
    }
  }
}

TEST(KAwareGraphTest, CostIsMonotoneNonIncreasingInK) {
  auto fixture = MakeRandomProblem(40, 8, 20);
  double previous = std::numeric_limits<double>::infinity();
  for (int64_t k = 0; k <= 8; ++k) {
    auto schedule = SolveKAware(fixture->problem, k);
    ASSERT_TRUE(schedule.ok());
    EXPECT_LE(schedule->total_cost, previous + 1e-9);
    previous = schedule->total_cost;
  }
}

TEST(KAwareGraphTest, LargeKEqualsUnconstrainedOptimum) {
  auto fixture = MakeRandomProblem(41, 6, 20);
  auto unconstrained = SolveUnconstrained(fixture->problem);
  ASSERT_TRUE(unconstrained.ok());
  // k = n-1 can express any schedule of n segments.
  auto schedule = SolveKAware(fixture->problem, 5);
  ASSERT_TRUE(schedule.ok());
  EXPECT_NEAR(schedule->total_cost, unconstrained->total_cost, 1e-6);
}

TEST(KAwareGraphTest, KZeroPicksBestStaticConfiguration) {
  auto fixture = MakeRandomProblem(42, 5, 15);
  auto schedule = SolveKAware(fixture->problem, 0);
  ASSERT_TRUE(schedule.ok());
  // All segments share one configuration...
  for (const Configuration& config : schedule->configs) {
    EXPECT_EQ(config, schedule->configs.front());
  }
  // ...and it beats (or ties) every other static choice.
  for (const Configuration& config : fixture->problem.candidates) {
    const std::vector<Configuration> static_schedule(5, config);
    EXPECT_LE(schedule->total_cost,
              EvaluateScheduleCost(fixture->problem, static_schedule) + 1e-9);
  }
}

TEST(KAwareGraphTest, CountInitialChangePolicyRestrictsFirstStage) {
  auto fixture = MakeRandomProblem(43, 5, 15);
  fixture->problem.count_initial_change = true;
  auto schedule = SolveKAware(fixture->problem, 0);
  ASSERT_TRUE(schedule.ok());
  // With k = 0 and the initial change counted, the schedule must stay
  // at C0 = {} throughout.
  for (const Configuration& config : schedule->configs) {
    EXPECT_TRUE(config.empty());
  }
}

TEST(KAwareGraphTest, RejectsNegativeK) {
  auto fixture = MakeRandomProblem(44, 3, 10);
  EXPECT_EQ(SolveKAware(fixture->problem, -1).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(KAwareGraphTest, ReportedCostMatchesEvaluationAndStats) {
  auto fixture = MakeRandomProblem(45, 6, 15);
  SolveStats stats;
  auto schedule = SolveKAware(fixture->problem, 2, &stats);
  ASSERT_TRUE(schedule.ok());
  EXPECT_NEAR(schedule->total_cost,
              EvaluateScheduleCost(fixture->problem, schedule->configs),
              1e-6);
  EXPECT_GT(stats.nodes_expanded, 0);
  EXPECT_GT(stats.relaxations, 0);
}

TEST(KAwareGraphTest, RelaxationsGrowWithK) {
  auto fixture = MakeRandomProblem(46, 10, 15);
  SolveStats stats_small;
  SolveStats stats_large;
  ASSERT_TRUE(SolveKAware(fixture->problem, 1, &stats_small).ok());
  ASSERT_TRUE(SolveKAware(fixture->problem, 7, &stats_large).ok());
  EXPECT_GT(stats_large.relaxations, 2 * stats_small.relaxations);
}

TEST(KAwareGraphTest, ForcedFinalConfigurationIsHonored) {
  auto fixture = MakeRandomProblem(47, 5, 15);
  fixture->problem.final_config = Configuration::Empty();
  auto with_final = SolveKAware(fixture->problem, 2);
  ASSERT_TRUE(with_final.ok());
  EXPECT_NEAR(with_final->total_cost,
              EvaluateScheduleCost(fixture->problem, with_final->configs),
              1e-6);
  fixture->problem.final_config.reset();
  auto without_final = SolveKAware(fixture->problem, 2);
  ASSERT_TRUE(without_final.ok());
  EXPECT_LE(without_final->total_cost, with_final->total_cost + 1e-9);
}

}  // namespace
}  // namespace cdpd
