#include "core/brute_force.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace cdpd {
namespace {

using testing_util::MakeRandomProblem;

TEST(BruteForceTest, RespectsChangeBound) {
  auto fixture = MakeRandomProblem(120, 4, 10);
  for (int64_t k = 0; k <= 3; ++k) {
    auto schedule = SolveBruteForce(fixture->problem, k);
    ASSERT_TRUE(schedule.ok());
    EXPECT_LE(CountChanges(fixture->problem, schedule->configs), k);
  }
}

TEST(BruteForceTest, UnconstrainedDominatesConstrained) {
  auto fixture = MakeRandomProblem(121, 4, 10);
  auto unconstrained = SolveBruteForce(fixture->problem, -1);
  auto constrained = SolveBruteForce(fixture->problem, 1);
  ASSERT_TRUE(unconstrained.ok());
  ASSERT_TRUE(constrained.ok());
  EXPECT_LE(unconstrained->total_cost, constrained->total_cost + 1e-9);
}

TEST(BruteForceTest, GuardsAgainstExplosion) {
  auto fixture = MakeRandomProblem(122, 10, 5);
  EXPECT_EQ(
      SolveBruteForce(fixture->problem, 1, /*max_sequences=*/1000)
          .status()
          .code(),
      StatusCode::kResourceExhausted);
}

TEST(BruteForceTest, SingleSegmentPicksCheapestConfiguration) {
  auto fixture = MakeRandomProblem(123, 1, 30);
  auto schedule = SolveBruteForce(fixture->problem, -1);
  ASSERT_TRUE(schedule.ok());
  const WhatIfEngine& what_if = *fixture->problem.what_if;
  for (const Configuration& config : fixture->problem.candidates) {
    const double cost =
        what_if.TransitionCost(fixture->problem.initial, config) +
        what_if.SegmentCost(0, config);
    EXPECT_LE(schedule->total_cost, cost + 1e-9);
  }
}

TEST(BruteForceTest, CostMatchesEvaluation) {
  auto fixture = MakeRandomProblem(124, 3, 10);
  auto schedule = SolveBruteForce(fixture->problem, 2);
  ASSERT_TRUE(schedule.ok());
  EXPECT_NEAR(schedule->total_cost,
              EvaluateScheduleCost(fixture->problem, schedule->configs),
              1e-9);
}

TEST(BruteForceTest, EmptyWorkload) {
  auto fixture = MakeRandomProblem(125, 0, 1);
  auto schedule = SolveBruteForce(fixture->problem, 0);
  ASSERT_TRUE(schedule.ok());
  EXPECT_TRUE(schedule->configs.empty());
  EXPECT_DOUBLE_EQ(schedule->total_cost, 0.0);
}

}  // namespace
}  // namespace cdpd
