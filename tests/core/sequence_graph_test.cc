#include "core/sequence_graph.h"

#include <gtest/gtest.h>

#include "core/unconstrained_optimizer.h"
#include "test_util.h"

namespace cdpd {
namespace {

using testing_util::MakeRandomProblem;
using testing_util::ProblemFixture;

class SequenceGraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fixture_ = MakeRandomProblem(/*seed=*/3, /*num_segments=*/3,
                                 /*block_size=*/15);
  }
  std::unique_ptr<ProblemFixture> fixture_;
};

TEST_F(SequenceGraphTest, NodeAndEdgeCountsMatchPaperFormulas) {
  // Figure 1's accounting: |V| = n*2^m + 2, |E| = (n-1)*2^{2m} + 2^{m+1}
  // (with "2^m" generalized to the candidate-configuration count).
  auto graph = SequenceGraph::Build(fixture_->problem);
  ASSERT_TRUE(graph.ok());
  const int64_t n = 3;
  const auto m = static_cast<int64_t>(fixture_->problem.candidates.size());
  EXPECT_EQ(graph->num_nodes(), n * m + 2);
  EXPECT_EQ(graph->num_edges(), (n - 1) * m * m + 2 * m);
}

TEST_F(SequenceGraphTest, Figure1Instance) {
  // n = 3 statements, one candidate index -> 2 configurations:
  // |V| = 8, |E| = 12.
  auto small = MakeRandomProblem(/*seed=*/4, /*num_segments=*/3,
                                 /*block_size=*/5);
  small->problem.candidates = {Configuration::Empty(),
                               Configuration({IndexDef({0})})};
  auto graph = SequenceGraph::Build(small->problem);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_nodes(), 3 * 2 + 2);
  EXPECT_EQ(graph->num_edges(), 2 * 2 * 2 + 2 * 2);
}

TEST_F(SequenceGraphTest, NodeStageAndConfigRoundTrip) {
  auto graph = SequenceGraph::Build(fixture_->problem);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->NodeStage(graph->source()), 0u);
  EXPECT_EQ(graph->NodeStage(graph->destination()), 4u);
  for (size_t stage = 1; stage <= 3; ++stage) {
    for (size_t c = 0; c < graph->num_configs(); ++c) {
      const auto node = graph->StageNode(stage, c);
      EXPECT_EQ(graph->NodeStage(node), stage);
      EXPECT_EQ(graph->NodeConfigIndex(node), c);
    }
  }
}

TEST_F(SequenceGraphTest, ShortestPathMatchesDpOptimizer) {
  auto graph = SequenceGraph::Build(fixture_->problem);
  ASSERT_TRUE(graph.ok());
  const DagShortestPaths paths = ComputeShortestPaths(*graph);
  auto schedule = SolveUnconstrained(fixture_->problem);
  ASSERT_TRUE(schedule.ok());
  EXPECT_NEAR(paths.dist[static_cast<size_t>(graph->destination())],
              schedule->total_cost, 1e-6);

  const auto path = ExtractPath(*graph, paths, graph->destination());
  ASSERT_EQ(path.size(), 5u);  // source + 3 stages + destination.
  // Both are optimal; tie-breaking may differ, so compare by cost.
  EXPECT_NEAR(EvaluateScheduleCost(fixture_->problem, graph->PathConfigs(path)),
              schedule->total_cost, 1e-6);
}

TEST_F(SequenceGraphTest, PathWeightEqualsScheduleCost) {
  auto graph = SequenceGraph::Build(fixture_->problem);
  ASSERT_TRUE(graph.ok());
  const DagShortestPaths paths = ComputeShortestPaths(*graph);
  const auto path = ExtractPath(*graph, paths, graph->destination());
  const std::vector<Configuration> configs = graph->PathConfigs(path);
  EXPECT_NEAR(paths.dist[static_cast<size_t>(graph->destination())],
              EvaluateScheduleCost(fixture_->problem, configs), 1e-6);
}

TEST_F(SequenceGraphTest, PathChangesUsesProblemPolicy) {
  auto graph = SequenceGraph::Build(fixture_->problem);
  ASSERT_TRUE(graph.ok());
  // A path that stays on candidate 0 for all stages has 0 changes.
  std::vector<SequenceGraph::NodeId> path = {graph->source()};
  for (size_t stage = 1; stage <= 3; ++stage) {
    path.push_back(graph->StageNode(stage, 0));
  }
  path.push_back(graph->destination());
  EXPECT_EQ(graph->PathChanges(path), 0);
  // Alternating between two configs changes twice.
  path[2] = graph->StageNode(2, 1);
  EXPECT_EQ(graph->PathChanges(path), 2);
}

TEST_F(SequenceGraphTest, FinalConfigConstraintWeightsDestinationEdges) {
  DesignProblem problem = fixture_->problem;
  problem.final_config = Configuration::Empty();
  auto graph = SequenceGraph::Build(problem);
  ASSERT_TRUE(graph.ok());
  // The destination edge from a non-empty configuration carries its
  // drop cost; from the empty configuration it is free.
  for (int32_t edge_id :
       graph->InEdgeIds(graph->destination())) {
    const SequenceGraph::Edge& edge = graph->edge(edge_id);
    const Configuration& config =
        problem.candidates[graph->NodeConfigIndex(edge.from)];
    if (config.empty()) {
      EXPECT_DOUBLE_EQ(edge.weight, 0.0);
    } else {
      EXPECT_GT(edge.weight, 0.0);
    }
  }
}

TEST_F(SequenceGraphTest, ToDotMentionsEveryNode) {
  auto graph = SequenceGraph::Build(fixture_->problem);
  ASSERT_TRUE(graph.ok());
  const std::string dot = graph->ToDot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("n0"), std::string::npos);
  EXPECT_NE(dot.find("dest"), std::string::npos);
}

TEST_F(SequenceGraphTest, EmptyWorkloadGraphIsSourceToDestination) {
  auto empty = MakeRandomProblem(/*seed=*/5, /*num_segments=*/0,
                                 /*block_size=*/1);
  auto graph = SequenceGraph::Build(empty->problem);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_nodes(), 2);
  EXPECT_EQ(graph->num_edges(), 1);
}

}  // namespace
}  // namespace cdpd
