// Concurrent SolverSession::Solve: many threads funnel through one
// session (one pool, one persistent cost cache, one stats ledger).
// The contract under test: every call returns the schedule a solo
// solve produces, each call's SolveResult::stats describe that call
// alone (no bleed between concurrent calls), and the session's
// accumulated totals equal the sum of the per-call stats. Runs under
// TSan in CI (the test-name filter matches SolverSession), where it
// also vouches for the cache/pool/ledger synchronization.

#include "core/solver_session.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "../test_util.h"

namespace cdpd {
namespace {

using testing_util::MakeRandomProblem;

SolveOptions SessionCallOptions() {
  SolveOptions options;
  options.method = OptimizerMethod::kOptimal;
  options.k = 2;
  return options;
}

TEST(SolverSessionConcurrentTest, ParallelSolvesMatchSoloAndKeepStatsDisjoint) {
  // The solo reference: same problem, fresh everything.
  auto reference_fixture = MakeRandomProblem(/*seed=*/21, /*num_segments=*/4,
                                             /*block_size=*/10);
  const SolveResult reference =
      Solve(reference_fixture->problem, SessionCallOptions()).value();

  // A cold cached solo solve bounds what any one call can report:
  // its probe count is the full cost-matrix demand (uncached solves
  // report zero probes, so the plain reference can't provide this).
  auto cached_fixture = MakeRandomProblem(/*seed=*/21, /*num_segments=*/4,
                                          /*block_size=*/10);
  CostCache solo_cache;
  SolveOptions cached_options = SessionCallOptions();
  cached_options.cost_cache = &solo_cache;
  const SolveResult cached_reference =
      Solve(cached_fixture->problem, cached_options).value();

  SessionOptions session_options;
  session_options.num_threads = 2;
  SolverSession session(session_options);

  constexpr int kThreads = 8;
  constexpr int kRounds = 3;
  std::vector<std::vector<SolveResult>> results(kThreads);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Per-thread fixture: engines are not shared, only the session.
      auto fixture = MakeRandomProblem(/*seed=*/21, /*num_segments=*/4,
                                       /*block_size=*/10);
      for (int round = 0; round < kRounds; ++round) {
        Result<SolveResult> solved =
            session.Solve(fixture->problem, SessionCallOptions());
        if (!solved.ok()) {
          failures.fetch_add(1);
          return;
        }
        results[t].push_back(std::move(solved).value());
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  ASSERT_EQ(failures.load(), 0);

  // Every concurrent call produced the solo schedule, bit for bit.
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(results[t].size(), static_cast<size_t>(kRounds));
    for (const SolveResult& result : results[t]) {
      EXPECT_EQ(result.schedule.configs, reference.schedule.configs);
      EXPECT_EQ(result.schedule.total_cost, reference.schedule.total_cost);
    }
  }

  // Per-call stats are disjoint: no call can report more costings
  // (real evaluations) than a solo solve does, nor more cache misses
  // than a fully *cold* cached solve — a warm or shared cache can only
  // lower both. A concurrent call's counters bleeding into another's
  // ledger would break these bounds. (Probe counts are not bounded by
  // the cold solve: a warm call re-probes the shared cache per
  // request, a cold one computes each unique key once.)
  const int64_t solo_costings = reference.stats.costings;
  const int64_t solo_misses = cached_reference.stats.cost_cache_misses;
  ASSERT_GT(solo_misses, 0);
  SolveStats summed;
  for (int t = 0; t < kThreads; ++t) {
    for (const SolveResult& result : results[t]) {
      EXPECT_LE(result.stats.costings, solo_costings);
      EXPECT_LE(result.stats.cost_cache_misses, solo_misses);
      summed.Accumulate(result.stats);
    }
  }

  // The session's ledger saw exactly the calls that completed, and its
  // counters are the sum of what the calls reported — nothing counted
  // twice, nothing dropped.
  EXPECT_EQ(session.solves(), int64_t{kThreads} * kRounds);
  const SolveStats totals = session.total_stats();
  EXPECT_EQ(totals.costings, summed.costings);
  EXPECT_EQ(totals.cost_cache_hits, summed.cost_cache_hits);
  EXPECT_EQ(totals.cost_cache_misses, summed.cost_cache_misses);
  EXPECT_EQ(totals.nodes_expanded, summed.nodes_expanded);
  EXPECT_EQ(totals.relaxations, summed.relaxations);

  // The warm cache did its job across the fleet: no thread can miss
  // more than a fully cold solo solve does, and sharing produced hits.
  EXPECT_LE(totals.cost_cache_misses,
            static_cast<int64_t>(kThreads) *
                cached_reference.stats.cost_cache_misses);
  EXPECT_GT(totals.cost_cache_hits, 0);
}

TEST(SolverSessionConcurrentTest, ConcurrentCallsWithDistinctProblems) {
  // Different seeds -> different workloads -> different cache keys,
  // all through one session. Each call must still match its own solo
  // reference; the shared cache may only change hit counts.
  constexpr int kThreads = 6;
  std::vector<SolveResult> solo(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    auto fixture = MakeRandomProblem(/*seed=*/100 + t, /*num_segments=*/3,
                                     /*block_size=*/10);
    solo[t] = Solve(fixture->problem, SessionCallOptions()).value();
  }

  SolverSession session;
  std::vector<SolveResult> concurrent(kThreads);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto fixture = MakeRandomProblem(/*seed=*/100 + t, /*num_segments=*/3,
                                       /*block_size=*/10);
      Result<SolveResult> solved =
          session.Solve(fixture->problem, SessionCallOptions());
      if (!solved.ok()) {
        failures.fetch_add(1);
        return;
      }
      concurrent[t] = std::move(solved).value();
    });
  }
  for (std::thread& thread : threads) thread.join();
  ASSERT_EQ(failures.load(), 0);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(concurrent[t].schedule.configs, solo[t].schedule.configs);
    EXPECT_EQ(concurrent[t].schedule.total_cost,
              solo[t].schedule.total_cost);
  }
  EXPECT_EQ(session.solves(), kThreads);
}

}  // namespace
}  // namespace cdpd
