#include "core/unconstrained_optimizer.h"

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/design_problem.h"
#include "test_util.h"

namespace cdpd {
namespace {

using testing_util::MakeRandomProblem;

TEST(UnconstrainedOptimizerTest, MatchesBruteForceOnSmallInstances) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    auto fixture = MakeRandomProblem(seed, /*num_segments=*/4,
                                     /*block_size=*/10);
    auto dp = SolveUnconstrained(fixture->problem);
    auto brute = SolveBruteForce(fixture->problem, /*k=*/-1);
    ASSERT_TRUE(dp.ok());
    ASSERT_TRUE(brute.ok());
    EXPECT_NEAR(dp->total_cost, brute->total_cost, 1e-6) << "seed " << seed;
  }
}

TEST(UnconstrainedOptimizerTest, ReportedCostMatchesEvaluation) {
  auto fixture = MakeRandomProblem(7, 6, 25);
  auto schedule = SolveUnconstrained(fixture->problem);
  ASSERT_TRUE(schedule.ok());
  EXPECT_NEAR(schedule->total_cost,
              EvaluateScheduleCost(fixture->problem, schedule->configs),
              1e-6);
  EXPECT_EQ(schedule->configs.size(), 6u);
}

TEST(UnconstrainedOptimizerTest, EmptyWorkloadCostsNothing) {
  auto fixture = MakeRandomProblem(8, 0, 1);
  auto schedule = SolveUnconstrained(fixture->problem);
  ASSERT_TRUE(schedule.ok());
  EXPECT_TRUE(schedule->configs.empty());
  EXPECT_DOUBLE_EQ(schedule->total_cost, 0.0);
}

TEST(UnconstrainedOptimizerTest, EmptyWorkloadWithForcedFinalPaysTransition) {
  auto fixture = MakeRandomProblem(9, 0, 1);
  const Configuration ia({IndexDef({0})});
  fixture->problem.final_config = ia;
  auto schedule = SolveUnconstrained(fixture->problem);
  ASSERT_TRUE(schedule.ok());
  EXPECT_DOUBLE_EQ(
      schedule->total_cost,
      fixture->problem.what_if->TransitionCost(Configuration::Empty(), ia));
}

TEST(UnconstrainedOptimizerTest, TracksHeavilySkewedWorkload) {
  // A long all-a workload must recommend an a-index in (nearly) every
  // segment once the build cost amortizes.
  auto fixture = MakeRandomProblem(10, 8, 200, /*max_indexes_per_config=*/1,
                                   /*num_rows=*/100'000,
                                   /*update_fraction=*/0.0);
  // Overwrite statements: every query hits column a.
  for (BoundStatement& s : fixture->statements) {
    s = BoundStatement::SelectPoint(0, 0, s.where_value);
  }
  WhatIfEngine what_if(fixture->model.get(), fixture->statements,
                       fixture->segments);
  fixture->problem.what_if = &what_if;
  auto schedule = SolveUnconstrained(fixture->problem);
  ASSERT_TRUE(schedule.ok());
  for (const Configuration& config : schedule->configs) {
    EXPECT_TRUE(config.Contains(IndexDef({0})) ||
                config.Contains(IndexDef({0, 1})));
  }
}

TEST(UnconstrainedOptimizerTest, ValidatesProblem) {
  auto fixture = MakeRandomProblem(11, 2, 5);
  fixture->problem.candidates = CandidateSpace();
  EXPECT_FALSE(SolveUnconstrained(fixture->problem).ok());
}

}  // namespace
}  // namespace cdpd
