#include "core/design_merging.h"

#include <gtest/gtest.h>

#include "core/k_aware_graph.h"
#include "core/unconstrained_optimizer.h"
#include "test_util.h"

namespace cdpd {
namespace {

using testing_util::MakeRandomProblem;

TEST(DesignMergingTest, ReducesChangesToBound) {
  auto fixture = MakeRandomProblem(50, 8, 15);
  auto unconstrained = SolveUnconstrained(fixture->problem);
  ASSERT_TRUE(unconstrained.ok());
  for (int64_t k = 0; k <= 4; ++k) {
    auto merged = MergeToConstraint(fixture->problem, *unconstrained, k);
    ASSERT_TRUE(merged.ok()) << "k=" << k;
    EXPECT_LE(CountChanges(fixture->problem, merged->configs), k);
    EXPECT_EQ(merged->configs.size(), 8u);
  }
}

TEST(DesignMergingTest, NoOpWhenConstraintAlreadySatisfied) {
  auto fixture = MakeRandomProblem(51, 6, 15);
  auto unconstrained = SolveUnconstrained(fixture->problem);
  ASSERT_TRUE(unconstrained.ok());
  const int64_t l = CountChanges(fixture->problem, unconstrained->configs);
  SolveStats stats;
  auto merged =
      MergeToConstraint(fixture->problem, *unconstrained, l, &stats);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(stats.merge_steps, 0);
  EXPECT_EQ(merged->configs, unconstrained->configs);
}

TEST(DesignMergingTest, NeverBeatsOptimalConstrainedCost) {
  for (uint64_t seed = 52; seed < 56; ++seed) {
    auto fixture = MakeRandomProblem(seed, 6, 12);
    auto unconstrained = SolveUnconstrained(fixture->problem);
    ASSERT_TRUE(unconstrained.ok());
    for (int64_t k = 0; k <= 3; ++k) {
      auto merged = MergeToConstraint(fixture->problem, *unconstrained, k);
      auto optimal = SolveKAware(fixture->problem, k);
      ASSERT_TRUE(merged.ok());
      ASSERT_TRUE(optimal.ok());
      EXPECT_GE(merged->total_cost, optimal->total_cost - 1e-9)
          << "seed " << seed << " k " << k;
    }
  }
}

TEST(DesignMergingTest, StepCountBoundedByInitialChanges) {
  auto fixture = MakeRandomProblem(57, 10, 12);
  auto unconstrained = SolveUnconstrained(fixture->problem);
  ASSERT_TRUE(unconstrained.ok());
  const int64_t l = CountChanges(fixture->problem, unconstrained->configs);
  SolveStats stats;
  auto merged =
      MergeToConstraint(fixture->problem, *unconstrained, 0, &stats);
  ASSERT_TRUE(merged.ok());
  EXPECT_LE(stats.merge_steps, std::max<int64_t>(l, 1));
  if (l > 0) {
    EXPECT_GT(stats.candidate_evaluations, 0);
  }
}

TEST(DesignMergingTest, ReportedCostMatchesEvaluation) {
  auto fixture = MakeRandomProblem(58, 7, 12);
  auto unconstrained = SolveUnconstrained(fixture->problem);
  ASSERT_TRUE(unconstrained.ok());
  auto merged = MergeToConstraint(fixture->problem, *unconstrained, 1);
  ASSERT_TRUE(merged.ok());
  EXPECT_NEAR(merged->total_cost,
              EvaluateScheduleCost(fixture->problem, merged->configs), 1e-6);
}

TEST(DesignMergingTest, WorksFromAnyFeasibleStartingSchedule) {
  // Start from a deliberately bad schedule: alternate configurations.
  auto fixture = MakeRandomProblem(59, 6, 10);
  DesignSchedule bad;
  for (size_t i = 0; i < 6; ++i) {
    bad.configs.push_back(fixture->problem.candidates[i % 2]);
  }
  bad.total_cost = EvaluateScheduleCost(fixture->problem, bad.configs);
  auto merged = MergeToConstraint(fixture->problem, bad, 1);
  ASSERT_TRUE(merged.ok());
  EXPECT_LE(CountChanges(fixture->problem, merged->configs), 1);
}

TEST(DesignMergingTest, RejectsWrongScheduleLength) {
  auto fixture = MakeRandomProblem(60, 4, 10);
  DesignSchedule wrong;
  wrong.configs.resize(3, Configuration::Empty());
  EXPECT_EQ(MergeToConstraint(fixture->problem, wrong, 1).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DesignMergingTest, RejectsNegativeK) {
  auto fixture = MakeRandomProblem(61, 4, 10);
  auto unconstrained = SolveUnconstrained(fixture->problem);
  ASSERT_TRUE(unconstrained.ok());
  EXPECT_EQ(
      MergeToConstraint(fixture->problem, *unconstrained, -1).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(DesignMergingTest, CountedInitialChangeWithKZeroFallsBackToC0) {
  auto fixture = MakeRandomProblem(62, 5, 10);
  fixture->problem.count_initial_change = true;
  auto unconstrained = SolveUnconstrained(fixture->problem);
  ASSERT_TRUE(unconstrained.ok());
  auto merged = MergeToConstraint(fixture->problem, *unconstrained, 0);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(CountChanges(fixture->problem, merged->configs), 0);
  for (const Configuration& config : merged->configs) {
    EXPECT_EQ(config, fixture->problem.initial);
  }
}

}  // namespace
}  // namespace cdpd
