#include "core/design_problem.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace cdpd {
namespace {

using testing_util::MakeRandomProblem;
using testing_util::ProblemFixture;

class DesignProblemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fixture_ = MakeRandomProblem(/*seed=*/1, /*num_segments=*/4,
                                 /*block_size=*/20);
  }
  std::unique_ptr<ProblemFixture> fixture_;
};

TEST_F(DesignProblemTest, ValidatesCleanProblem) {
  EXPECT_TRUE(fixture_->problem.Validate().ok());
  EXPECT_EQ(fixture_->problem.num_segments(), 4u);
}

TEST_F(DesignProblemTest, RejectsMissingOracle) {
  DesignProblem problem = fixture_->problem;
  problem.what_if = nullptr;
  EXPECT_EQ(problem.Validate().code(), StatusCode::kInvalidArgument);
}

TEST_F(DesignProblemTest, RejectsEmptyCandidates) {
  DesignProblem problem = fixture_->problem;
  problem.candidates = CandidateSpace();
  EXPECT_EQ(problem.Validate().code(), StatusCode::kInvalidArgument);
}

TEST_F(DesignProblemTest, RejectsOversizedCandidate) {
  DesignProblem problem = fixture_->problem;
  problem.space_bound_pages = 1;  // Nothing but {} fits.
  EXPECT_EQ(problem.Validate().code(), StatusCode::kInvalidArgument);
}

TEST_F(DesignProblemTest, RejectsOversizedInitialOrFinal) {
  DesignProblem problem = fixture_->problem;
  problem.candidates = {Configuration::Empty()};
  problem.space_bound_pages = 1;
  problem.initial = Configuration({IndexDef({0})});
  EXPECT_FALSE(problem.Validate().ok());
  problem.initial = Configuration::Empty();
  problem.final_config = Configuration({IndexDef({0})});
  EXPECT_FALSE(problem.Validate().ok());
}

TEST_F(DesignProblemTest, CountChangesDefaultIgnoresInitial) {
  const Configuration empty;
  const Configuration ia({IndexDef({0})});
  const Configuration ib({IndexDef({1})});
  DesignProblem& problem = fixture_->problem;  // count_initial_change=false.
  EXPECT_EQ(CountChanges(problem, {ia, ia, ia, ia}), 0);
  EXPECT_EQ(CountChanges(problem, {ia, ib, ia, ia}), 2);
  EXPECT_EQ(CountChanges(problem, {empty, empty, ia, ib}), 2);
  EXPECT_EQ(CountChanges(problem, {}), 0);
}

TEST_F(DesignProblemTest, CountChangesWithInitialPolicy) {
  const Configuration empty;
  const Configuration ia({IndexDef({0})});
  DesignProblem problem = fixture_->problem;
  problem.count_initial_change = true;
  problem.initial = empty;
  EXPECT_EQ(CountChanges(problem, {ia, ia, ia, ia}), 1);
  EXPECT_EQ(CountChanges(problem, {empty, ia, ia, ia}), 1);
  EXPECT_EQ(CountChanges(problem, {empty, empty, empty, empty}), 0);
}

TEST_F(DesignProblemTest, EvaluateScheduleCostMatchesManualSum) {
  const WhatIfEngine& what_if = *fixture_->problem.what_if;
  const Configuration empty;
  const Configuration ia({IndexDef({0})});
  const std::vector<Configuration> configs = {empty, ia, ia, empty};
  double expected = 0;
  expected += what_if.TransitionCost(empty, empty) +
              what_if.SegmentCost(0, empty);
  expected += what_if.TransitionCost(empty, ia) + what_if.SegmentCost(1, ia);
  expected += what_if.TransitionCost(ia, ia) + what_if.SegmentCost(2, ia);
  expected +=
      what_if.TransitionCost(ia, empty) + what_if.SegmentCost(3, empty);
  EXPECT_DOUBLE_EQ(EvaluateScheduleCost(fixture_->problem, configs),
                   expected);
}

TEST_F(DesignProblemTest, EvaluateScheduleCostAddsFinalTransition) {
  const Configuration empty;
  const Configuration ia({IndexDef({0})});
  const std::vector<Configuration> configs = {ia, ia, ia, ia};
  DesignProblem problem = fixture_->problem;
  const double unconstrained_dest = EvaluateScheduleCost(problem, configs);
  problem.final_config = empty;
  const double forced_empty_dest = EvaluateScheduleCost(problem, configs);
  EXPECT_DOUBLE_EQ(
      forced_empty_dest - unconstrained_dest,
      problem.what_if->TransitionCost(ia, empty));
}

}  // namespace
}  // namespace cdpd
