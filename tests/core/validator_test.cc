#include "core/validator.h"

#include <gtest/gtest.h>

#include "core/unconstrained_optimizer.h"
#include "test_util.h"

namespace cdpd {
namespace {

using testing_util::MakeRandomProblem;

class ValidatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fixture_ = MakeRandomProblem(130, 4, 10);
    schedule_ = SolveUnconstrained(fixture_->problem).value();
  }
  std::unique_ptr<testing_util::ProblemFixture> fixture_;
  DesignSchedule schedule_;
};

TEST_F(ValidatorTest, AcceptsOptimizerOutput) {
  EXPECT_TRUE(ValidateSchedule(fixture_->problem, schedule_, std::nullopt).ok());
}

TEST_F(ValidatorTest, RejectsWrongLength) {
  DesignSchedule bad = schedule_;
  bad.configs.pop_back();
  EXPECT_EQ(ValidateSchedule(fixture_->problem, bad, std::nullopt).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ValidatorTest, RejectsNonCandidateConfiguration) {
  DesignSchedule bad = schedule_;
  bad.configs[0] =
      Configuration({IndexDef({3, 2, 1, 0})});  // Never a candidate.
  EXPECT_EQ(ValidateSchedule(fixture_->problem, bad, std::nullopt).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ValidatorTest, RejectsChangeBoundViolation) {
  const int64_t changes =
      CountChanges(fixture_->problem, schedule_.configs);
  if (changes == 0) GTEST_SKIP() << "static schedule; nothing to violate";
  EXPECT_EQ(ValidateSchedule(fixture_->problem, schedule_, changes - 1)
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(
      ValidateSchedule(fixture_->problem, schedule_, changes).ok());
}

TEST_F(ValidatorTest, RejectsInconsistentReportedCost) {
  DesignSchedule bad = schedule_;
  bad.total_cost *= 1.5;
  EXPECT_EQ(ValidateSchedule(fixture_->problem, bad, std::nullopt).code(),
            StatusCode::kInternal);
}

TEST_F(ValidatorTest, RejectsSpaceBoundViolation) {
  DesignProblem tight = fixture_->problem;
  // Shrink the bound below the indexes actually used (if any).
  bool has_nonempty = false;
  for (const Configuration& c : schedule_.configs) {
    has_nonempty |= !c.empty();
  }
  if (!has_nonempty) GTEST_SKIP() << "all-empty schedule";
  tight.space_bound_pages = 1;
  // The problem itself now fails validation (candidates too big), which
  // the validator surfaces.
  EXPECT_FALSE(ValidateSchedule(tight, schedule_, std::nullopt).ok());
}

}  // namespace
}  // namespace cdpd
