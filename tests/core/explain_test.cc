// The explain report: golden renderings of ToText/ToJson on a
// hand-built report (every field pinned, so the output is exact), and
// the attribution invariants on real solved schedules — EXEC + TRANS
// totals reproduce the solver-reported cost bit-for-bit, transitions
// partition the schedule, and the optimality gap quotes the price of
// the change budget.

#include "core/explain.h"

#include <algorithm>
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "catalog/configuration.h"
#include "core/solver.h"
#include "storage/schema.h"
#include "../test_util.h"

namespace cdpd {
namespace {

using testing_util::MakeIndex;
using testing_util::MakeRandomProblem;

/// A fully pinned report: two transitions over a 3-segment, 30-statement
/// schedule. Values are dyadic rationals so both renderers print them
/// without rounding surprises.
ExplainReport MakeGoldenReport(const Schema& schema) {
  ExplainReport report;
  report.method = "kaware";
  report.method_detail = "k-aware graph";
  report.k = 2;
  report.changes_used = 1;
  report.num_segments = 3;
  report.num_statements = 30;
  report.exec_total = 100.5;
  report.trans_total = 8.5;
  report.total_cost = 109.0;
  report.solver_reported_cost = 109.0;
  report.exact = true;
  report.unconstrained_cost = 100.0;
  report.optimality_gap = 9.0;
  report.stats.wall_seconds = 0.25;
  report.stats.threads_used = 4;
  report.stats.costings = 12;
  report.stats.cost_cache_hits = 3;

  ExplainTransition initial;
  initial.segment = 0;
  initial.first_statement = 0;
  initial.run_end = 2;
  initial.run_end_statement = 20;
  initial.from = Configuration::Empty();
  initial.to = Configuration({MakeIndex(schema, {"a"})});
  initial.built = {MakeIndex(schema, {"a"})};
  initial.trans_cost = 0.0;
  initial.exec_savings = 20.25;
  initial.break_even_statement = 10;
  initial.counts_against_k = false;
  initial.kind = "initial";
  report.transitions.push_back(std::move(initial));

  ExplainTransition interior;
  interior.segment = 2;
  interior.first_statement = 20;
  interior.run_end = 3;
  interior.run_end_statement = 30;
  interior.from = Configuration({MakeIndex(schema, {"a"})});
  interior.to = Configuration({MakeIndex(schema, {"b"})});
  interior.built = {MakeIndex(schema, {"b"})};
  interior.dropped = {MakeIndex(schema, {"a"})};
  interior.trans_cost = 8.5;
  interior.exec_savings = 4.5;
  interior.counts_against_k = true;
  interior.kind = "interior";
  report.transitions.push_back(std::move(interior));
  return report;
}

TEST(ExplainTest, GoldenTextRendering) {
  const Schema schema = MakePaperSchema();
  const std::string expected =
      "explain (schema v1)\n"
      "  method:         kaware — k-aware graph\n"
      "  k:              2, changes used: 1\n"
      "  workload:       30 statements in 3 segments\n"
      "  schedule cost:  109  (attribution exact)\n"
      "    EXEC total:   100.5\n"
      "    TRANS total:  8.5\n"
      "  unconstrained:  100  (gap 9 = price of the change budget)\n"
      "  provenance:     normal\n"
      "  solve:          0.25 s, 4 threads, 12 costings (cost cache 3 "
      "hits / 0 misses)\n"
      "transitions (2):\n"
      "  @stmt 0   initial build I(a)             TRANS 0"
      "  saves 20.25 over stmts [0, 20)  break-even @stmt 10"
      "  (free: initial build)\n"
      "  @stmt 20  change  build I(b); drop I(a)  TRANS 8.5"
      "  saves 4.5 over stmts [20, 30)  never breaks even in its run\n";
  EXPECT_EQ(MakeGoldenReport(schema).ToText(schema), expected);
}

TEST(ExplainTest, GoldenJsonRendering) {
  const Schema schema = MakePaperSchema();
  const std::string json = MakeGoldenReport(schema).ToJson(schema);
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"cdpd.explain\""), std::string::npos);
  // Summary, with the exact %.17g double renderings.
  EXPECT_NE(json.find("\"method\": \"kaware\""), std::string::npos);
  EXPECT_NE(json.find("\"k\": 2, \"changes_used\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"exec_total\": 100.5"), std::string::npos);
  EXPECT_NE(json.find("\"trans_total\": 8.5"), std::string::npos);
  EXPECT_NE(json.find("\"total_cost\": 109"), std::string::npos);
  EXPECT_NE(json.find("\"exact\": true"), std::string::npos);
  EXPECT_NE(json.find("\"unconstrained_cost\": 100"), std::string::npos);
  EXPECT_NE(json.find("\"optimality_gap\": 9"), std::string::npos);
  // Embedded stats (microsecond rounding).
  EXPECT_NE(json.find("\"stats\": {\"wall_us\": 250000"), std::string::npos);
  // Memory columns: a golden report built without a tracker has no
  // prediction, no measurement, and a null ratio.
  EXPECT_NE(json.find("\"predicted_kaware_bytes\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"actual_kaware_bytes\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"kaware_bytes_ratio\": null"), std::string::npos);
  // Both transitions, with nullable break-even.
  EXPECT_NE(json.find("\"kind\": \"initial\""), std::string::npos);
  EXPECT_NE(json.find("\"built\": [\"I(a)\"]"), std::string::npos);
  EXPECT_NE(json.find("\"break_even_statement\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"interior\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped\": [\"I(a)\"]"), std::string::npos);
  EXPECT_NE(json.find("\"break_even_statement\": null"), std::string::npos);
  // Balanced object/array nesting (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(ExplainTest, SolvedScheduleAttributionIsExact) {
  auto fixture = MakeRandomProblem(/*seed=*/7, /*num_segments=*/4,
                                   /*block_size=*/10);
  SolveOptions options;
  options.method = OptimizerMethod::kOptimal;
  options.k = 2;
  options.explain = true;
  const SolveResult result = Solve(fixture->problem, options).value();
  ASSERT_TRUE(result.explain.has_value());
  const ExplainReport& report = *result.explain;

  // The contract advisor_cli enforces with its exit status: totals
  // recomputed in EvaluateScheduleCost order match the solver-reported
  // cost bit-for-bit, and the side totals account for all of it.
  EXPECT_TRUE(report.exact);
  EXPECT_EQ(report.total_cost, result.schedule.total_cost);
  EXPECT_EQ(report.solver_reported_cost, result.schedule.total_cost);
  EXPECT_DOUBLE_EQ(report.exec_total + report.trans_total,
                   report.total_cost);
  EXPECT_GT(report.exec_total, 0.0);

  EXPECT_EQ(report.method, "optimal");
  ASSERT_TRUE(report.k.has_value());
  EXPECT_EQ(*report.k, 2);
  EXPECT_LE(report.changes_used, 2);
  EXPECT_EQ(report.changes_used,
            CountChanges(fixture->problem, result.schedule.configs));
  EXPECT_EQ(report.num_segments, 4u);
  EXPECT_EQ(report.num_statements, 40u);

  // Transitions partition the schedule: strictly increasing starts,
  // each covering a non-empty run, each a real physical change whose
  // `to` is `from` plus built minus dropped.
  size_t previous_start = 0;
  for (size_t i = 0; i < report.transitions.size(); ++i) {
    const ExplainTransition& t = report.transitions[i];
    if (i > 0) EXPECT_GT(t.segment, previous_start);
    previous_start = t.segment;
    EXPECT_NE(t.from, t.to);
    EXPECT_GE(t.built.size() + t.dropped.size(), 1u);
    EXPECT_GT(t.run_end, t.segment);
    EXPECT_GT(t.run_end_statement, t.first_statement);
    const ConfigurationDelta delta = DiffConfigurations(t.from, t.to);
    EXPECT_EQ(delta.created, t.built);
    EXPECT_EQ(delta.dropped, t.dropped);
    EXPECT_EQ(t.trans_cost,
              fixture->what_if->TransitionCost(t.from, t.to));
  }
}

TEST(ExplainTest, ConstrainedSolveReportsPredictedVsActualKAwareBytes) {
  auto fixture = MakeRandomProblem(/*seed=*/7, /*num_segments=*/4,
                                   /*block_size=*/10);
  SolveOptions options;
  options.method = OptimizerMethod::kOptimal;
  options.k = 2;
  options.explain = true;
  const SolveResult result = Solve(fixture->problem, options).value();
  ASSERT_TRUE(result.explain.has_value());
  const ExplainReport& report = *result.explain;

  // The §3 space-bound check: the prediction comes from the problem
  // dimensions, the measurement from the tracker, and the DP's real
  // footprint stays within 2x of the formula in both directions.
  ASSERT_GT(report.predicted_kaware_bytes, 0);
  ASSERT_GT(report.actual_kaware_bytes, 0);
  const double ratio = static_cast<double>(report.actual_kaware_bytes) /
                       static_cast<double>(report.predicted_kaware_bytes);
  EXPECT_GE(ratio, 0.5);
  EXPECT_LE(ratio, 2.0);

  // Both renderers carry the comparison.
  const std::string text = report.ToText(fixture->schema);
  EXPECT_NE(text.find("k-aware:"), std::string::npos);
  EXPECT_NE(text.find("predicted"), std::string::npos);
  EXPECT_NE(text.find("ratio"), std::string::npos);
  const std::string json = report.ToJson(fixture->schema);
  EXPECT_NE(json.find("\"predicted_kaware_bytes\": " +
                      std::to_string(report.predicted_kaware_bytes)),
            std::string::npos);
  EXPECT_NE(json.find("\"actual_kaware_bytes\": " +
                      std::to_string(report.actual_kaware_bytes)),
            std::string::npos);
  EXPECT_EQ(json.find("\"kaware_bytes_ratio\": null"), std::string::npos);
}

TEST(ExplainTest, UnconstrainedSolveReportsZeroGap) {
  auto fixture = MakeRandomProblem(/*seed=*/11, /*num_segments=*/3,
                                   /*block_size=*/10);
  SolveOptions options;
  options.method = OptimizerMethod::kOptimal;  // No k: unconstrained.
  options.explain = true;
  const SolveResult result = Solve(fixture->problem, options).value();
  ASSERT_TRUE(result.explain.has_value());
  const ExplainReport& report = *result.explain;
  EXPECT_TRUE(report.exact);
  EXPECT_FALSE(report.k.has_value());
  ASSERT_TRUE(report.unconstrained_cost.has_value());
  ASSERT_TRUE(report.optimality_gap.has_value());
  EXPECT_DOUBLE_EQ(*report.optimality_gap, 0.0);
  EXPECT_EQ(*report.unconstrained_cost, report.solver_reported_cost);
  // Renders without a fixed point of reference for the gap line.
  const std::string text = report.ToText(fixture->schema);
  EXPECT_NE(text.find("unconstrained"), std::string::npos);
  EXPECT_NE(text.find("(attribution exact)"), std::string::npos);
}

TEST(ExplainTest, FinalDestinationConstraintIsAttributedAsFinal) {
  auto fixture = MakeRandomProblem(/*seed=*/7, /*num_segments=*/4,
                                   /*block_size=*/10);
  // Force the paper's destination constraint: the schedule must return
  // to the empty design after the last statement.
  fixture->problem.final_config = Configuration::Empty();
  SolveOptions options;
  options.method = OptimizerMethod::kOptimal;
  options.explain = true;
  const SolveResult result = Solve(fixture->problem, options).value();
  ASSERT_TRUE(result.explain.has_value());
  const ExplainReport& report = *result.explain;
  EXPECT_TRUE(report.exact);
  ASSERT_FALSE(report.transitions.empty());
  // An unconstrained solve over point-heavy segments keeps at least
  // one index live at the end, so the forced teardown must appear as
  // the trailing "final" transition, never charged against k.
  ASSERT_FALSE(result.schedule.configs.empty());
  if (result.schedule.configs.back() != Configuration::Empty()) {
    const ExplainTransition& last = report.transitions.back();
    EXPECT_EQ(last.kind, "final");
    EXPECT_FALSE(last.counts_against_k);
    EXPECT_EQ(last.segment, report.num_segments);
    EXPECT_EQ(last.first_statement, report.num_statements);
    EXPECT_EQ(last.run_end, last.segment);
    EXPECT_EQ(last.to, Configuration::Empty());
  }
  // Every non-final transition still covers a non-empty run.
  for (const ExplainTransition& t : report.transitions) {
    if (t.kind != "final") EXPECT_GT(t.run_end, t.segment);
  }
}

}  // namespace
}  // namespace cdpd
