// The unified Solve() entry point: all five techniques behind one
// signature, option validation, and the SolveStats surface.

#include "core/solver.h"

#include <gtest/gtest.h>

#include "core/k_aware_graph.h"
#include "core/unconstrained_optimizer.h"
#include "core/validator.h"
#include "test_util.h"
#include "workload/standard_workloads.h"

namespace cdpd {
namespace {

using testing_util::MakeRandomProblem;

SolveOptions BaseOptions(OptimizerMethod method, int64_t k) {
  SolveOptions options;
  options.method = method;
  options.k = k;
  options.num_threads = 1;
  return options;
}

TEST(SolverTest, AllFiveMethodsAreReachable) {
  auto fixture = MakeRandomProblem(201, 8, 12);
  for (OptimizerMethod method :
       {OptimizerMethod::kOptimal, OptimizerMethod::kGreedySeq,
        OptimizerMethod::kMerging, OptimizerMethod::kRanking,
        OptimizerMethod::kHybrid}) {
    SolveOptions options = BaseOptions(method, 2);
    if (method == OptimizerMethod::kGreedySeq) {
      options.greedy.candidate_indexes =
          MakePaperCandidateIndexes(fixture->schema);
      options.greedy.max_indexes_per_config = 1;
    }
    auto result = Solve(fixture->problem, options);
    ASSERT_TRUE(result.ok())
        << OptimizerMethodToString(method) << ": " << result.status();
    EXPECT_EQ(result->schedule.configs.size(),
              fixture->problem.num_segments())
        << OptimizerMethodToString(method);
    EXPECT_LE(CountChanges(fixture->problem, result->schedule.configs), 2)
        << OptimizerMethodToString(method);
    EXPECT_FALSE(result->method_detail.empty());
  }
}

TEST(SolverTest, StatsArePopulated) {
  auto fixture = MakeRandomProblem(202, 8, 12);
  auto result = Solve(fixture->problem, BaseOptions(OptimizerMethod::kOptimal, 2));
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->stats.wall_seconds, 0.0);
  EXPECT_GT(result->stats.costings, 0);
  EXPECT_GT(result->stats.nodes_expanded, 0);
  EXPECT_GT(result->stats.relaxations, 0);
  EXPECT_EQ(result->stats.threads_used, 1);
}

TEST(SolverTest, NulloptKSolvesUnconstrained) {
  auto fixture = MakeRandomProblem(203, 8, 12);
  SolveOptions options;
  options.num_threads = 1;
  for (OptimizerMethod method :
       {OptimizerMethod::kOptimal, OptimizerMethod::kMerging,
        OptimizerMethod::kRanking, OptimizerMethod::kHybrid}) {
    options.method = method;
    auto result = Solve(fixture->problem, options);
    ASSERT_TRUE(result.ok()) << OptimizerMethodToString(method);
    auto reference = SolveUnconstrained(fixture->problem);
    ASSERT_TRUE(reference.ok());
    EXPECT_NEAR(result->schedule.total_cost, reference->total_cost, 1e-9)
        << OptimizerMethodToString(method);
  }
}

TEST(SolverTest, OptimalMatchesDirectKAware) {
  auto fixture = MakeRandomProblem(204, 8, 12);
  auto unified = Solve(fixture->problem, BaseOptions(OptimizerMethod::kOptimal, 3));
  ASSERT_TRUE(unified.ok());
  auto direct = SolveKAware(fixture->problem, 3);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(unified->schedule.configs, direct->configs);
  EXPECT_EQ(unified->schedule.total_cost, direct->total_cost);
}

TEST(SolverTest, GreedySeqReportsReducedCandidates) {
  auto fixture = MakeRandomProblem(205, 8, 12);
  SolveOptions options = BaseOptions(OptimizerMethod::kGreedySeq, 2);
  options.greedy.candidate_indexes =
      MakePaperCandidateIndexes(fixture->schema);
  options.greedy.max_indexes_per_config = 1;
  auto result = Solve(fixture->problem, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->reduced_candidates.empty());
  // The other methods leave the field empty.
  auto optimal = Solve(fixture->problem, BaseOptions(OptimizerMethod::kOptimal, 2));
  ASSERT_TRUE(optimal.ok());
  EXPECT_TRUE(optimal->reduced_candidates.empty());
}

TEST(SolverTest, ValidateRejectsBadOptions) {
  auto fixture = MakeRandomProblem(206, 4, 10);
  {
    SolveOptions options;
    options.k = -1;
    auto result = Solve(fixture->problem, options);
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
  {
    SolveOptions options;
    options.num_threads = -2;
    auto result = Solve(fixture->problem, options);
    EXPECT_FALSE(result.ok());
  }
  {
    SolveOptions options;
    options.ranking_max_paths = 0;
    auto result = Solve(fixture->problem, options);
    EXPECT_FALSE(result.ok());
  }
  {
    SolveOptions options;
    options.method = OptimizerMethod::kGreedySeq;  // No indexes given.
    auto result = Solve(fixture->problem, options);
    EXPECT_FALSE(result.ok());
  }
}

TEST(SolverTest, SchedulesValidate) {
  auto fixture = MakeRandomProblem(207, 8, 12);
  for (int64_t k = 0; k <= 4; ++k) {
    auto result = Solve(fixture->problem, BaseOptions(OptimizerMethod::kOptimal, k));
    ASSERT_TRUE(result.ok()) << "k=" << k;
    EXPECT_TRUE(
        ValidateSchedule(fixture->problem, result->schedule, k).ok());
  }
}

}  // namespace
}  // namespace cdpd
