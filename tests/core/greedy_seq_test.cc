#include "core/greedy_seq.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/k_aware_graph.h"
#include "test_util.h"

namespace cdpd {
namespace {

using testing_util::MakeRandomProblem;

GreedySeqOptions PaperOptions(const Schema& schema,
                              int32_t max_per_config = 1) {
  GreedySeqOptions options;
  options.candidate_indexes = MakePaperCandidateIndexes(schema);
  options.max_indexes_per_config = max_per_config;
  return options;
}

TEST(GreedySeqTest, ProducesFeasibleSchedule) {
  auto fixture = MakeRandomProblem(70, 8, 20);
  auto result =
      SolveGreedySeq(fixture->problem, 2, PaperOptions(fixture->schema));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->schedule.configs.size(), 8u);
  EXPECT_LE(CountChanges(fixture->problem, result->schedule.configs), 2);
}

TEST(GreedySeqTest, ReducedCandidateSetIsSmallAndContainsUsedConfigs) {
  auto fixture = MakeRandomProblem(71, 6, 20, /*max_indexes_per_config=*/2);
  auto result = SolveGreedySeq(fixture->problem, 3,
                               PaperOptions(fixture->schema, 2));
  ASSERT_TRUE(result.ok());
  // At most O(m n) + empty + initial candidates.
  EXPECT_LE(result->reduced_candidates.size(), 6u * 6u + 2u);
  for (const Configuration& config : result->schedule.configs) {
    EXPECT_NE(std::find(result->reduced_candidates.begin(),
                        result->reduced_candidates.end(), config),
              result->reduced_candidates.end());
  }
}

TEST(GreedySeqTest, NeverBeatsOptimalOnFullSpace) {
  for (uint64_t seed = 72; seed < 75; ++seed) {
    auto fixture = MakeRandomProblem(seed, 5, 12);
    auto optimal = SolveKAware(fixture->problem, 2);
    auto greedy =
        SolveGreedySeq(fixture->problem, 2, PaperOptions(fixture->schema));
    ASSERT_TRUE(optimal.ok());
    ASSERT_TRUE(greedy.ok());
    EXPECT_GE(greedy->schedule.total_cost, optimal->total_cost - 1e-9)
        << "seed " << seed;
  }
}

TEST(GreedySeqTest, OftenMatchesOptimalOnSingleIndexSpace) {
  // With max one index per configuration, the greedy per-segment best
  // equals the true per-segment best, so the reduced space usually
  // retains the optimum. Verify it happens on at least one fixture.
  auto fixture = MakeRandomProblem(76, 6, 30);
  auto optimal = SolveKAware(fixture->problem, 2);
  auto greedy =
      SolveGreedySeq(fixture->problem, 2, PaperOptions(fixture->schema));
  ASSERT_TRUE(optimal.ok());
  ASSERT_TRUE(greedy.ok());
  EXPECT_NEAR(greedy->schedule.total_cost, optimal->total_cost, 1e-6);
}

TEST(GreedySeqTest, UnconstrainedVariant) {
  auto fixture = MakeRandomProblem(77, 5, 15);
  auto result = SolveGreedySeq(fixture->problem, std::nullopt,
                               PaperOptions(fixture->schema));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->schedule.configs.size(), 5u);
}

TEST(GreedySeqTest, RespectsSpaceBound) {
  auto fixture = MakeRandomProblem(78, 5, 15, /*max_indexes_per_config=*/2);
  // Bound that excludes two-column indexes entirely.
  fixture->problem.space_bound_pages =
      IndexDef({0}).SizePages(100'000) + 1;
  fixture->problem.candidates = {Configuration::Empty()};
  auto result = SolveGreedySeq(fixture->problem, 2,
                               PaperOptions(fixture->schema, 2));
  ASSERT_TRUE(result.ok());
  const int64_t rows = fixture->model->num_rows();
  for (const Configuration& config : result->reduced_candidates) {
    EXPECT_LE(config.SizePages(rows), fixture->problem.space_bound_pages);
  }
}

TEST(GreedySeqTest, RejectsEmptyCandidateIndexes) {
  auto fixture = MakeRandomProblem(79, 3, 10);
  GreedySeqOptions options;
  EXPECT_EQ(SolveGreedySeq(fixture->problem, 1, options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(GreedySeqTest, GrowsMultiIndexConfigurationsWhenAllowed) {
  // A workload spread over two unrelated columns rewards a two-index
  // configuration, which the greedy construction must discover.
  auto fixture = MakeRandomProblem(80, 2, 10, /*max_indexes_per_config=*/4,
                                   /*num_rows=*/200'000,
                                   /*update_fraction=*/0.0);
  for (size_t i = 0; i < fixture->statements.size(); ++i) {
    const ColumnId col = i % 2 == 0 ? 0 : 2;
    fixture->statements[i] = BoundStatement::SelectPoint(col, col, 1);
  }
  WhatIfEngine what_if(fixture->model.get(), fixture->statements,
                       fixture->segments);
  fixture->problem.what_if = &what_if;
  auto result = SolveGreedySeq(fixture->problem, 1,
                               PaperOptions(fixture->schema, 4));
  ASSERT_TRUE(result.ok());
  bool saw_multi_index = false;
  for (const Configuration& config : result->reduced_candidates) {
    saw_multi_index |= config.num_indexes() >= 2;
  }
  EXPECT_TRUE(saw_multi_index);
}

}  // namespace
}  // namespace cdpd
