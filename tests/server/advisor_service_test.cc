// AdvisorService: request parsing strictness, the sliding-window
// ingest contract, and the warm-start property the whole serving
// design rests on — a resident service re-solving over a slid window
// (warm cost cache, resident session, reused pool) answers
// bit-identically to a cold one-shot Solve() over the same window,
// while re-costing almost nothing (cache hit rate >= 0.9).

#include "server/advisor_service.h"

#include <deque>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "advisor/config_enumeration.h"
#include "common/string_util.h"
#include "core/design_problem.h"
#include "core/solver.h"
#include "index/index_def.h"
#include "workload/trace_io.h"
#include "workload/workload.h"

namespace cdpd {
namespace {

// Test-scale service: small blocks so a handful of statements already
// give the DP several stages.
ServiceOptions SmallServiceOptions() {
  ServiceOptions options;
  options.rows = 50'000;
  options.domain_size = 100'000;
  options.block_size = 5;
  options.k = 2;
  options.method = OptimizerMethod::kOptimal;
  options.num_threads = 2;
  return options;
}

// One batch of paper-dialect statements; `salt` varies the literals so
// batches are distinguishable in the window.
std::string TraceBatch(int salt) {
  std::string sql;
  for (int i = 0; i < 2; ++i) {
    const int v = salt * 10 + i;
    sql += "SELECT a FROM t WHERE a = " + std::to_string(v) + ";\n";
    sql += "SELECT b FROM t WHERE b = " + std::to_string(v + 1) + ";\n";
    sql += "UPDATE t SET c = " + std::to_string(v) + " WHERE d = " +
           std::to_string(v + 2) + ";\n";
    sql += "SELECT c FROM t WHERE d = " + std::to_string(v + 3) + ";\n";
    sql += "SELECT d FROM t WHERE b = " + std::to_string(v + 4) + ";\n";
  }
  return sql;
}

// The cold one-shot reference: a fresh model, engine, and solver over
// exactly `sql`, built the way the service builds its own problem.
// No session, no cache, nothing resident.
SolveResult ColdOneShot(const ServiceOptions& options, const std::string& sql,
                        const Configuration& initial) {
  CostModel model(options.schema, options.rows, options.domain_size,
                  options.params);
  Workload trace = ReadTrace(options.schema, sql).value();
  const std::vector<Segment> segments =
      SegmentFixed(trace.size(), options.block_size);
  WhatIfEngine engine(&model, trace.statements, segments);

  ConfigEnumOptions enum_options;
  enum_options.max_indexes_per_config = options.max_indexes_per_config;
  enum_options.space_bound_pages = options.space_bound_pages;
  enum_options.num_rows = model.num_rows();
  std::vector<Configuration> candidates =
      EnumerateConfigurations(MakePaperCandidateIndexes(options.schema),
                              enum_options)
          .value();

  DesignProblem problem;
  problem.what_if = &engine;
  problem.candidates = candidates;
  problem.initial = initial;
  problem.space_bound_pages = options.space_bound_pages;

  SolveOptions solve_options;
  solve_options.method = options.method;
  solve_options.k = options.k;
  return Solve(problem, solve_options).value();
}

TEST(ParseRecommendRequestTest, ParsesEveryKeyWithCommentsAndBlanks) {
  const RecommendRequest request = ParseRecommendRequest(
                                       "# a full request\n"
                                       "k=3\n"
                                       "\n"
                                       "method=greedy-seq\n"
                                       "deadline_ms=250\n"
                                       "memory_limit_bytes=1048576\n"
                                       "prune=true\n"
                                       "chunks=4\n"
                                       "apply=1\n")
                                       .value();
  ASSERT_TRUE(request.k.has_value());
  EXPECT_EQ(*request.k, 3);
  ASSERT_TRUE(request.method.has_value());
  EXPECT_EQ(*request.method, OptimizerMethod::kGreedySeq);
  ASSERT_TRUE(request.deadline.has_value());
  EXPECT_EQ(request.deadline->count(), 250);
  ASSERT_TRUE(request.memory_limit_bytes.has_value());
  EXPECT_EQ(*request.memory_limit_bytes, 1048576);
  EXPECT_TRUE(request.prune);
  EXPECT_EQ(request.segment_chunks, 4);
  EXPECT_TRUE(request.apply);
}

TEST(ParseRecommendRequestTest, EmptyPayloadIsAllDefaults) {
  const RecommendRequest request = ParseRecommendRequest("").value();
  EXPECT_FALSE(request.k.has_value());
  EXPECT_FALSE(request.method.has_value());
  EXPECT_FALSE(request.deadline.has_value());
  EXPECT_FALSE(request.prune);
  EXPECT_FALSE(request.apply);
}

TEST(ParseRecommendRequestTest, RejectsTyposInsteadOfDefaulting) {
  // Every malformed input must be an error — a typo that silently
  // falls back to the defaults is a debugging trap on a live server.
  const char* bad[] = {
      "kk=2",                      // unknown key
      "just some text",            // no '='
      "k=two",                     // non-integer
      "k=",                        // empty integer
      "deadline_ms=-5",            // negative deadline
      "memory_limit_bytes=0",      // non-positive limit
      "method=simulated-anneal",   // unknown method
      "prune=maybe",               // non-boolean
      "chunks=-1",                 // negative chunk count
      "apply=2",                   // non-boolean
  };
  for (const char* payload : bad) {
    const auto result = ParseRecommendRequest(payload);
    ASSERT_FALSE(result.ok()) << payload;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
        << payload;
  }
}

TEST(AdvisorServiceTest, ParseConfigSpecForms) {
  AdvisorService service(SmallServiceOptions());
  EXPECT_EQ(service.ParseConfigSpec("").value().num_indexes(), 0);
  EXPECT_EQ(service.ParseConfigSpec(" {} ").value().num_indexes(), 0);
  EXPECT_EQ(service.ParseConfigSpec("a").value().num_indexes(), 1);
  EXPECT_EQ(service.ParseConfigSpec("a,b;c").value().num_indexes(), 2);
  EXPECT_FALSE(service.ParseConfigSpec("a,,b").ok());
  EXPECT_FALSE(service.ParseConfigSpec("nosuchcolumn").ok());
}

TEST(AdvisorServiceTest, IngestSlidesTheWindowAndBumpsTheEpoch) {
  ServiceOptions options = SmallServiceOptions();
  options.window_statements = 15;
  AdvisorService service(options);
  EXPECT_EQ(service.window_size(), 0u);
  EXPECT_EQ(service.epoch(), 0u);

  const IngestAck first = service.IngestSql(TraceBatch(1)).value();
  EXPECT_EQ(first.accepted, 10u);
  EXPECT_EQ(first.window_statements, 10u);
  EXPECT_EQ(first.dropped, 0u);
  EXPECT_EQ(first.epoch, 1u);

  // 10 more statements against a 15-cap: the 5 oldest fall out.
  const IngestAck second = service.IngestSql(TraceBatch(2)).value();
  EXPECT_EQ(second.accepted, 10u);
  EXPECT_EQ(second.window_statements, 15u);
  EXPECT_EQ(second.dropped, 5u);
  EXPECT_EQ(second.epoch, 2u);
  EXPECT_EQ(service.window_size(), 15u);

  // A comment-only batch is a no-op: same window, same epoch (so the
  // resident solution stays valid).
  const IngestAck noop = service.IngestSql("-- nothing\n").value();
  EXPECT_EQ(noop.accepted, 0u);
  EXPECT_EQ(noop.window_statements, 15u);
  EXPECT_EQ(noop.epoch, 2u);

  EXPECT_FALSE(service.IngestSql("SELECT a FROM nosuchtable;").ok());
}

TEST(AdvisorServiceTest, WhatIfRejectsConfigOverTheSpaceBound) {
  ServiceOptions options = SmallServiceOptions();
  options.space_bound_pages = 1;  // No index fits in one page.
  AdvisorService service(options);
  ASSERT_TRUE(service.IngestSql(TraceBatch(1)).ok());
  const Configuration indexed = service.ParseConfigSpec("a").value();
  const auto result = service.WhatIfConfig(indexed);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  // The empty configuration always fits.
  EXPECT_TRUE(service.WhatIfConfig(Configuration()).ok());
}

TEST(AdvisorServiceTest, RecommendOnEmptyWindowIsFailedPrecondition) {
  AdvisorService service(SmallServiceOptions());
  const auto result = service.RecommendNow(RecommendRequest{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

// The tentpole property: after every window slide, the resident
// service's warm re-solve is bit-identical to a cold one-shot Solve()
// over the same window — same schedule, same total cost. The cache and
// the resident session are pure accelerators.
TEST(AdvisorServiceTest, WarmResolveIsBitIdenticalToColdOneShot) {
  ServiceOptions options = SmallServiceOptions();
  options.window_statements = 25;
  AdvisorService service(options);

  // Mirror of the service's window, cap applied, statement by
  // statement — the cold reference solves over exactly this text.
  std::deque<std::string> window;
  for (int step = 1; step <= 4; ++step) {
    const std::string batch = TraceBatch(step);
    for (const std::string& line : Split(batch, '\n')) {
      if (Trim(line).empty()) continue;
      window.push_back(line);
      if (window.size() > options.window_statements) window.pop_front();
    }
    ASSERT_TRUE(service.IngestSql(batch).ok());

    const RecommendAnswer warm =
        service.RecommendNow(RecommendRequest{}).value();
    EXPECT_FALSE(warm.reused_resident);

    std::string window_sql;
    for (const std::string& line : window) window_sql += line + "\n";
    const SolveResult cold = ColdOneShot(options, window_sql,
                                         /*initial=*/Configuration());

    ASSERT_EQ(warm.schedule.configs.size(), cold.schedule.configs.size())
        << "step " << step;
    EXPECT_EQ(warm.schedule.configs, cold.schedule.configs)
        << "step " << step;
    EXPECT_EQ(warm.schedule.total_cost, cold.schedule.total_cost)
        << "step " << step;  // bitwise: no tolerance
  }
}

// The warm-start payoff: once the service has costed the window's
// statement shapes, a re-solve over a slid window re-costs only the
// genuinely new shapes. With a repeating workload the hit rate must be
// >= 0.9 (the ISSUE's acceptance bar).
TEST(AdvisorServiceTest, WarmResolveCacheHitRateAtLeastPointNine) {
  ServiceOptions options = SmallServiceOptions();
  options.window_statements = 30;
  AdvisorService service(options);

  ASSERT_TRUE(service.IngestSql(TraceBatch(7)).ok());
  const RecommendAnswer cold =
      service.RecommendNow(RecommendRequest{}).value();
  EXPECT_GT(cold.stats.cost_cache_misses, 0);

  // Slide the window with the same statement shapes and re-solve: the
  // persistent cache answers (almost) every costing.
  ASSERT_TRUE(service.IngestSql(TraceBatch(7)).ok());
  const RecommendAnswer warm =
      service.RecommendNow(RecommendRequest{}).value();
  EXPECT_FALSE(warm.reused_resident);
  const int64_t probes =
      warm.stats.cost_cache_hits + warm.stats.cost_cache_misses;
  ASSERT_GT(probes, 0);
  const double hit_rate =
      static_cast<double>(warm.stats.cost_cache_hits) /
      static_cast<double>(probes);
  EXPECT_GE(hit_rate, 0.9) << "hits=" << warm.stats.cost_cache_hits
                           << " misses=" << warm.stats.cost_cache_misses;
}

TEST(AdvisorServiceTest, ResidentSolutionAnswersIdenticalRepeatRequests) {
  AdvisorService service(SmallServiceOptions());
  ASSERT_TRUE(service.IngestSql(TraceBatch(3)).ok());

  const RecommendAnswer first =
      service.RecommendNow(RecommendRequest{}).value();
  EXPECT_FALSE(first.reused_resident);

  const RecommendAnswer repeat =
      service.RecommendNow(RecommendRequest{}).value();
  EXPECT_TRUE(repeat.reused_resident);
  EXPECT_EQ(repeat.schedule.configs, first.schedule.configs);
  EXPECT_EQ(repeat.schedule.total_cost, first.schedule.total_cost);
  EXPECT_EQ(service.registry()->Snapshot().CounterValue(
                "server.recommends_reused"),
            1);

  // Different options -> a real re-solve.
  RecommendRequest different;
  different.k = 1;
  EXPECT_FALSE(service.RecommendNow(different).value().reused_resident);

  // A deadline-bounded request is never served from the resident
  // solution (its result is time-dependent by contract).
  RecommendRequest deadline_bound;
  deadline_bound.deadline = std::chrono::milliseconds(60'000);
  EXPECT_FALSE(
      service.RecommendNow(deadline_bound).value().reused_resident);

  // An ingest invalidates it too.
  ASSERT_TRUE(service.IngestSql(TraceBatch(4)).ok());
  EXPECT_FALSE(
      service.RecommendNow(RecommendRequest{}).value().reused_resident);
}

TEST(AdvisorServiceTest, ApplyAdoptsTheFinalConfigAsInitial) {
  AdvisorService service(SmallServiceOptions());
  ASSERT_TRUE(service.IngestSql(TraceBatch(5)).ok());
  EXPECT_EQ(service.initial_config().num_indexes(), 0);

  RecommendRequest apply;
  apply.apply = true;
  const RecommendAnswer answer = service.RecommendNow(apply).value();
  ASSERT_FALSE(answer.schedule.configs.empty());
  EXPECT_TRUE(service.initial_config() == answer.schedule.configs.back());
}

TEST(AdvisorServiceTest, HandleDispatchesOpcodesAndRejectsTheRest) {
  AdvisorService service(SmallServiceOptions());
  EXPECT_EQ(service.Handle(static_cast<uint8_t>(ServerOp::kPing), "").value(),
            "");

  const std::string ack =
      service.Handle(static_cast<uint8_t>(ServerOp::kIngest), TraceBatch(1))
          .value();
  EXPECT_NE(ack.find("\"accepted\":10"), std::string::npos) << ack;

  const std::string priced =
      service.Handle(static_cast<uint8_t>(ServerOp::kWhatIf), "a").value();
  EXPECT_NE(priced.find("\"exec_cost\""), std::string::npos) << priced;

  const std::string recommended =
      service.Handle(static_cast<uint8_t>(ServerOp::kRecommend), "k=2")
          .value();
  EXPECT_NE(recommended.find("\"schedule\""), std::string::npos)
      << recommended;

  const std::string stats =
      service.Handle(static_cast<uint8_t>(ServerOp::kStats), "").value();
  EXPECT_NE(stats.find("\"counters\""), std::string::npos) << stats;
  EXPECT_NE(stats.find("server.window_epoch"), std::string::npos) << stats;

  // Malformed payloads surface as InvalidArgument, not defaults.
  EXPECT_EQ(service.Handle(static_cast<uint8_t>(ServerOp::kRecommend),
                           "bogus line")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // SHUTDOWN belongs to the transport; unknown opcodes are rejected.
  EXPECT_EQ(
      service.Handle(static_cast<uint8_t>(ServerOp::kShutdown), "")
          .status()
          .code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(service.Handle(99, "").status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace cdpd
