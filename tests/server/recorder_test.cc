// The flight recorder's in-memory half: the bounded ring between the
// serving threads and the writer thread, flush/rotate semantics, the
// postmortem tail, the recorder.* metrics, and the bundle writer.

#include "server/recorder.h"

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "server/advisor_service.h"
#include "server/journal.h"

namespace cdpd {
namespace {

JournalRecord SampleRecord(int i) {
  JournalRecord record;
  record.opcode = 1;  // INGEST.
  record.window_epoch = static_cast<uint64_t>(i);
  record.mono_us = i * 1000;
  record.wall_us = i * 1000;
  record.duration_us = 10;
  record.request_id = "rec-" + std::to_string(i);
  record.payload = "SELECT a FROM t WHERE a = " + std::to_string(i) + ";";
  record.response = "{\"accepted\":1}";
  return record;
}

/// Removes every `<base>.NNNNNN` segment — the recorder deliberately
/// resumes after existing segments, so a journal left by a previous
/// test run would otherwise leak into this one.
void RemoveJournalSegments(const std::string& base) {
  for (int i = 0;; ++i) {
    if (std::remove(JournalSegmentPath(base, i).c_str()) != 0) break;
  }
}

Recorder::Options TestOptions(const std::string& name) {
  Recorder::Options options;
  options.path = ::testing::TempDir() + "/" + name;
  options.meta.rows = 50'000;
  options.meta.method = "optimal";
  RemoveJournalSegments(options.path);
  return options;
}

std::string ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "";
  std::string content;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  std::fclose(f);
  return content;
}

TEST(RecorderTest, AppendsFlushAndReadBackThroughTheJournal) {
  MetricsRegistry registry;
  auto recorder = Recorder::Open(TestOptions("rec_roundtrip"), &registry);
  ASSERT_TRUE(recorder.ok()) << recorder.status().ToString();
  Recorder& rec = *recorder.value();

  for (int i = 0; i < 8; ++i) rec.Append(SampleRecord(i));
  ASSERT_TRUE(rec.Flush().ok());
  EXPECT_EQ(rec.frames_written(), 8);
  EXPECT_EQ(rec.frames_dropped(), 0);

  JournalReader reader;
  ASSERT_TRUE(reader.Open(rec.path()).ok());
  EXPECT_EQ(reader.meta().rows, 50'000);
  JournalRecord record;
  int count = 0;
  while (reader.Next(&record)) {
    EXPECT_EQ(record.request_id, "rec-" + std::to_string(count));
    ++count;
  }
  EXPECT_EQ(count, 8);
  EXPECT_FALSE(reader.truncated());

  // The registry mirrors the counters.
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("recorder.frames_written"), 8);
  EXPECT_EQ(snapshot.CounterValue("recorder.frames_dropped"), 0);
  EXPECT_GT(snapshot.CounterValue("recorder.bytes_written"), 0);
  EXPECT_EQ(snapshot.GaugeValue("recorder.enabled"), 1);

  rec.Close();
}

TEST(RecorderTest, SizeBasedRotationProducesOrderedSegments) {
  Recorder::Options options = TestOptions("rec_rotation");
  options.segment_max_bytes = 256;  // A few frames per segment.
  auto recorder = Recorder::Open(std::move(options), nullptr);
  ASSERT_TRUE(recorder.ok());
  Recorder& rec = *recorder.value();

  constexpr int kFrames = 24;
  for (int i = 0; i < kFrames; ++i) rec.Append(SampleRecord(i));
  ASSERT_TRUE(rec.Flush().ok());
  rec.Close();

  JournalReader reader;
  ASSERT_TRUE(reader.Open(rec.path()).ok());
  EXPECT_GT(reader.segments().size(), 1u);
  JournalRecord record;
  int count = 0;
  while (reader.Next(&record)) {
    // Rotation preserves global order across segment boundaries.
    EXPECT_EQ(record.window_epoch, static_cast<uint64_t>(count));
    ++count;
  }
  EXPECT_EQ(count, kFrames);
  EXPECT_FALSE(reader.truncated());
}

TEST(RecorderTest, ExplicitRotateStartsAFreshSegment) {
  auto recorder = Recorder::Open(TestOptions("rec_manual_rotate"), nullptr);
  ASSERT_TRUE(recorder.ok());
  Recorder& rec = *recorder.value();

  rec.Append(SampleRecord(0));
  ASSERT_TRUE(rec.Rotate().ok());
  rec.Append(SampleRecord(1));
  ASSERT_TRUE(rec.Flush().ok());
  EXPECT_NE(rec.StatusJson().find("\"segment_index\":1"), std::string::npos)
      << rec.StatusJson();
  rec.Close();

  JournalReader reader;
  ASSERT_TRUE(reader.Open(rec.path()).ok());
  ASSERT_EQ(reader.segments().size(), 2u);
  JournalRecord record;
  EXPECT_TRUE(reader.Next(&record));
  EXPECT_TRUE(reader.Next(&record));
  EXPECT_FALSE(reader.Next(&record));
  EXPECT_FALSE(reader.truncated());
}

TEST(RecorderTest, ReopeningABaseResumesAfterTheLastSegment) {
  const Recorder::Options options = TestOptions("rec_resume");
  {
    auto first = Recorder::Open(options, nullptr);
    ASSERT_TRUE(first.ok());
    (*first)->Append(SampleRecord(0));
    ASSERT_TRUE((*first)->Flush().ok());
    (*first)->Close();
  }
  // A restarted server must not overwrite its predecessor's journal.
  {
    auto second = Recorder::Open(options, nullptr);
    ASSERT_TRUE(second.ok());
    EXPECT_NE((*second)->StatusJson().find("\"segment_index\":1"),
              std::string::npos)
        << (*second)->StatusJson();
    (*second)->Append(SampleRecord(1));
    ASSERT_TRUE((*second)->Flush().ok());
    (*second)->Close();
  }
  JournalReader reader;
  ASSERT_TRUE(reader.Open(options.path).ok());
  EXPECT_EQ(reader.segments().size(), 2u);
  JournalRecord record;
  int count = 0;
  while (reader.Next(&record)) ++count;
  EXPECT_EQ(count, 2);
}

TEST(RecorderTest, AppendAfterCloseDropsAndCounts) {
  MetricsRegistry registry;
  auto recorder = Recorder::Open(TestOptions("rec_closed"), &registry);
  ASSERT_TRUE(recorder.ok());
  Recorder& rec = *recorder.value();
  rec.Append(SampleRecord(0));
  rec.Close();
  rec.Append(SampleRecord(1));
  rec.Append(SampleRecord(2));
  EXPECT_EQ(rec.frames_written(), 1);
  EXPECT_EQ(rec.frames_dropped(), 2);
  EXPECT_EQ(registry.Snapshot().CounterValue("recorder.frames_dropped"), 2);
  EXPECT_FALSE(rec.Flush().ok());  // Closed: FailedPrecondition.
}

TEST(RecorderTest, TailKeepsTheMostRecentFramesOldestFirst) {
  Recorder::Options options = TestOptions("rec_tail");
  options.tail_frames = 3;
  auto recorder = Recorder::Open(std::move(options), nullptr);
  ASSERT_TRUE(recorder.ok());
  Recorder& rec = *recorder.value();
  for (int i = 0; i < 7; ++i) rec.Append(SampleRecord(i));
  const std::vector<JournalRecord> tail = rec.Tail();
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].request_id, "rec-4");
  EXPECT_EQ(tail[2].request_id, "rec-6");
  rec.Close();
}

TEST(RecorderTest, StatusJsonDescribesTheLiveRecorder) {
  auto recorder = Recorder::Open(TestOptions("rec_status"), nullptr);
  ASSERT_TRUE(recorder.ok());
  Recorder& rec = *recorder.value();
  rec.Append(SampleRecord(0));
  ASSERT_TRUE(rec.Flush().ok());
  const std::string json = rec.StatusJson();
  EXPECT_NE(json.find("\"recording\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"segment\":"), std::string::npos);
  EXPECT_NE(json.find("\"frames_appended\":1"), std::string::npos);
  EXPECT_NE(json.find("\"frames_written\":1"), std::string::npos);
  EXPECT_NE(json.find("\"ring_capacity\":4096"), std::string::npos);
  EXPECT_NE(json.find("\"write_errors\":0"), std::string::npos);
  rec.Close();
}

TEST(RecorderTest, ConcurrentAppendersLoseNothingWithinTheRingBound) {
  auto recorder = Recorder::Open(TestOptions("rec_concurrent"), nullptr);
  ASSERT_TRUE(recorder.ok());
  Recorder& rec = *recorder.value();

  constexpr int kThreads = 4;
  constexpr int kPerThread = 250;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t] {
      for (int i = 0; i < kPerThread; ++i) {
        rec.Append(SampleRecord(t * kPerThread + i));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  ASSERT_TRUE(rec.Flush().ok());
  // The default ring (4096) never filled, so every frame is durable.
  EXPECT_EQ(rec.frames_written() + rec.frames_dropped(),
            kThreads * kPerThread);
  EXPECT_EQ(rec.frames_dropped(), 0);
  rec.Close();

  JournalReader reader;
  ASSERT_TRUE(reader.Open(rec.path()).ok());
  JournalRecord record;
  int count = 0;
  while (reader.Next(&record)) ++count;
  EXPECT_EQ(count, kThreads * kPerThread);
  EXPECT_FALSE(reader.truncated());
}

TEST(RecorderTest, PostmortemBundleWritesTheFullArtifactSet) {
  ServiceOptions service_options;
  service_options.rows = 50'000;
  service_options.block_size = 5;
  service_options.num_threads = 2;
  AdvisorService service(std::move(service_options));
  ASSERT_TRUE(
      service.IngestSql("SELECT a FROM t WHERE a = 1;").ok());

  auto recorder = Recorder::Open(TestOptions("rec_bundle"), nullptr);
  ASSERT_TRUE(recorder.ok());
  (*recorder)->Append(SampleRecord(0));

  const std::string dir = ::testing::TempDir() + "/rec_bundle_out";
  const Status status = WritePostmortemBundle(&service, recorder->get(), dir,
                                              "unit test");
  ASSERT_TRUE(status.ok()) << status.ToString();

  const std::string manifest = ReadWholeFile(dir + "/manifest.json");
  EXPECT_NE(manifest.find("\"reason\":\"unit test\""), std::string::npos)
      << manifest;
  EXPECT_NE(manifest.find("\"git_sha\":"), std::string::npos);
  EXPECT_NE(manifest.find("\"uptime_seconds\":"), std::string::npos);
  const std::string varz = ReadWholeFile(dir + "/varz.json");
  EXPECT_NE(varz.find("\"counters\""), std::string::npos);
  EXPECT_NE(varz.find("\"build_type\":"), std::string::npos);
  EXPECT_NE(ReadWholeFile(dir + "/slowlog.json").find("\"entries\""),
            std::string::npos);
  EXPECT_NE(ReadWholeFile(dir + "/metrics.prom").find("# TYPE"),
            std::string::npos);
  const std::string tail = ReadWholeFile(dir + "/journal_tail.json");
  EXPECT_NE(tail.find("\"rec-0\""), std::string::npos) << tail;

  (*recorder)->Close();

  // Without a recorder the tail file is skipped but the rest lands.
  const std::string bare_dir = ::testing::TempDir() + "/rec_bundle_bare";
  ASSERT_TRUE(
      WritePostmortemBundle(&service, nullptr, bare_dir, "no recorder")
          .ok());
  EXPECT_NE(ReadWholeFile(bare_dir + "/manifest.json")
                .find("\"recording\":false"),
            std::string::npos);
  EXPECT_EQ(ReadWholeFile(bare_dir + "/journal_tail.json"), "");
}

}  // namespace
}  // namespace cdpd
