// The HTTP observability plane: routing (pure, no sockets) plus one
// live-listener test over real TCP. The Prometheus rendering itself is
// covered in common/metrics_test.cc; here we check the endpoints wire
// the service state through.

#include "server/http_endpoint.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "server/advisor_server.h"
#include "server/client.h"
#include "server/recorder.h"

namespace cdpd {
namespace {

ServiceOptions TestServiceOptions() {
  ServiceOptions options;
  options.rows = 50'000;
  options.domain_size = 100'000;
  options.block_size = 5;
  options.k = 2;
  options.num_threads = 2;
  return options;
}

std::string TestTrace() {
  return "SELECT a FROM t WHERE a = 1;\n"
         "SELECT b FROM t WHERE b = 2;\n"
         "SELECT c FROM t WHERE d = 3;\n"
         "SELECT d FROM t WHERE b = 4;\n"
         "UPDATE t SET a = 5 WHERE b = 6;\n";
}

/// Minimal HTTP client: one GET, returns the raw response (status line,
/// headers, body).
std::string HttpGet(int port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + target + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
  (void)!::write(fd, request.data(), request.size());
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(HttpEndpointTest, RoutesHealthAndReadiness) {
  AdvisorService service(TestServiceOptions());
  HttpEndpoint endpoint(&service);

  EXPECT_EQ(endpoint.Route("/healthz").status, 200);
  EXPECT_EQ(endpoint.Route("/healthz").body, "ok\n");

  // Not ready before the first ingest; ready after.
  EXPECT_EQ(endpoint.Route("/readyz").status, 503);
  ASSERT_TRUE(service.IngestSql(TestTrace()).ok());
  EXPECT_EQ(endpoint.Route("/readyz").status, 200);
}

TEST(HttpEndpointTest, MetricsAndVarzRenderTheLiveRegistry) {
  AdvisorService service(TestServiceOptions());
  HttpEndpoint endpoint(&service);
  ASSERT_TRUE(service.IngestSql(TestTrace()).ok());
  ASSERT_TRUE(service.RecommendNow(RecommendRequest{}).ok());

  const HttpResponse metrics = endpoint.Route("/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.content_type.find("version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.body.find("# TYPE server_window_statements gauge"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("server_window_statements 5"),
            std::string::npos);
  // Solver-side metrics flow through after a recommend.
  EXPECT_NE(metrics.body.find("cost_cache_misses"), std::string::npos);
  EXPECT_NE(metrics.body.find("mem_peak_bytes_total"), std::string::npos);

  const HttpResponse varz = endpoint.Route("/varz");
  EXPECT_EQ(varz.status, 200);
  EXPECT_EQ(varz.content_type, "application/json");
  EXPECT_NE(varz.body.find("\"counters\""), std::string::npos);
  EXPECT_NE(varz.body.find("server.window_statements"), std::string::npos);
}

TEST(HttpEndpointTest, SlowlogAndTraceResolveRecordedRequests) {
  AdvisorService service(TestServiceOptions());
  HttpEndpoint endpoint(&service);

  SlowLogEntry entry;
  entry.request_id = "http-req-1";
  entry.op = "whatif";
  entry.duration_us = 123;
  service.slow_log()->Record(entry);

  const HttpResponse slowlog = endpoint.Route("/slowlog");
  EXPECT_EQ(slowlog.status, 200);
  EXPECT_NE(slowlog.body.find("\"http-req-1\""), std::string::npos);

  EXPECT_EQ(endpoint.Route("/trace?id=http-req-1").status, 200);
  EXPECT_NE(endpoint.Route("/trace?id=http-req-1").body.find(
                "\"duration_us\":123"),
            std::string::npos);
  // Extra params are tolerated, the id is still found.
  EXPECT_EQ(endpoint.Route("/trace?x=1&id=http-req-1").status, 200);
  EXPECT_EQ(endpoint.Route("/trace?id=never-seen").status, 404);
  EXPECT_EQ(endpoint.Route("/trace").status, 400);
  EXPECT_EQ(endpoint.Route("/trace?id=bad id").status, 400);
}

TEST(HttpEndpointTest, UnknownTargetsAre404) {
  AdvisorService service(TestServiceOptions());
  HttpEndpoint endpoint(&service);
  EXPECT_EQ(endpoint.Route("/nope").status, 404);
  EXPECT_EQ(endpoint.Route("/").status, 404);
  // The 404 body advertises the endpoint surface, recorder included.
  EXPECT_NE(endpoint.Route("/nope").body.find("/recorder"),
            std::string::npos);
}

TEST(HttpEndpointTest, VarzCarriesBuildIdentityAndRecorderState) {
  AdvisorService service(TestServiceOptions());
  HttpEndpoint endpoint(&service);
  const std::string varz = endpoint.Route("/varz").body;
  EXPECT_NE(varz.find("\"git_sha\":"), std::string::npos) << varz;
  EXPECT_NE(varz.find("\"build_type\":"), std::string::npos);
  EXPECT_NE(varz.find("\"uptime_seconds\":"), std::string::npos);
  // No --record: the recorder object says so.
  EXPECT_NE(varz.find("\"recorder\":{\"recording\":false}"),
            std::string::npos)
      << varz;
  // Still a strict superset of the stats document.
  EXPECT_NE(varz.find("\"counters\""), std::string::npos);
}

TEST(HttpEndpointTest, RecorderEndpointReportsAndRotates) {
  AdvisorService service(TestServiceOptions());
  HttpEndpoint endpoint(&service);

  // Without a recorder the endpoint degrades to a status document.
  EXPECT_EQ(endpoint.Route("/recorder").status, 200);
  EXPECT_EQ(endpoint.Route("/recorder").body, "{\"recording\":false}");

  Recorder::Options options;
  options.path = ::testing::TempDir() + "/http_recorder_journal";
  // The recorder resumes after existing segments; drop any journal a
  // previous test run left behind (the assertions pin segment_index).
  for (int i = 0;; ++i) {
    if (std::remove(JournalSegmentPath(options.path, i).c_str()) != 0) break;
  }
  auto recorder = Recorder::Open(std::move(options), service.registry());
  ASSERT_TRUE(recorder.ok()) << recorder.status().ToString();
  service.set_recorder(recorder->get());

  const HttpResponse status = endpoint.Route("/recorder");
  EXPECT_EQ(status.status, 200);
  EXPECT_EQ(status.content_type, "application/json");
  EXPECT_NE(status.body.find("\"recording\":true"), std::string::npos)
      << status.body;
  EXPECT_NE(status.body.find("\"segment_index\":0"), std::string::npos);

  // /varz mirrors the live recorder status.
  EXPECT_NE(endpoint.Route("/varz").body.find("\"recording\":true"),
            std::string::npos);

  const HttpResponse rotated = endpoint.Route("/recorder?rotate=1");
  EXPECT_EQ(rotated.status, 200);
  EXPECT_NE(rotated.body.find("\"segment_index\":1"), std::string::npos)
      << rotated.body;

  service.set_recorder(nullptr);
  (*recorder)->Close();
}

TEST(HttpEndpointTest, FinishedConnectionThreadsAreReapedDuringOperation) {
  // A long-lived server scraped forever must not accumulate one
  // unjoined thread per past request: the accept loop joins finished
  // handlers before each accept, so the tracked set stays bounded.
  AdvisorService service(TestServiceOptions());
  HttpEndpoint endpoint(&service);
  ASSERT_TRUE(endpoint.Start().ok());
  for (int i = 0; i < 16; ++i) {
    ASSERT_NE(HttpGet(endpoint.port(), "/healthz").find("200 OK"),
              std::string::npos);
  }
  // Reaping happens on the accept after a handler finishes; keep
  // issuing requests until the backlog of finished threads drains.
  bool reaped = false;
  for (int i = 0; i < 200 && !reaped; ++i) {
    ASSERT_NE(HttpGet(endpoint.port(), "/healthz").find("200 OK"),
              std::string::npos);
    reaped = endpoint.TrackedConnectionsForTest() <= 2;
    if (!reaped) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(reaped);
  endpoint.Shutdown();
}

TEST(HttpEndpointTest, ServesRealSocketsNextToTheFrameServer) {
  AdvisorService service(TestServiceOptions());
  AdvisorServer server(&service);
  ASSERT_TRUE(server.Start().ok());
  HttpEndpoint endpoint(&service);
  ASSERT_TRUE(endpoint.Start().ok());
  ASSERT_GT(endpoint.port(), 0);
  ASSERT_NE(endpoint.port(), server.port());

  EXPECT_NE(HttpGet(endpoint.port(), "/healthz").find("200 OK"),
            std::string::npos);
  EXPECT_NE(HttpGet(endpoint.port(), "/readyz").find("503"),
            std::string::npos);

  // Drive the frame server, then observe it over HTTP.
  AdvisorClient client =
      AdvisorClient::Connect("127.0.0.1", server.port()).value();
  ASSERT_TRUE(client.Ingest(TestTrace()).ok());
  client.set_next_request_id("http-e2e-1");
  ASSERT_TRUE(client.Recommend("k=1").ok());
  // Metrics and slow-log entries commit after the response write; a
  // follow-up request on the same (sequential) connection serializes
  // past the recommend's record before we scrape.
  ASSERT_TRUE(client.Ping().ok());

  EXPECT_NE(HttpGet(endpoint.port(), "/readyz").find("200 OK"),
            std::string::npos);
  const std::string metrics = HttpGet(endpoint.port(), "/metrics");
  EXPECT_NE(metrics.find("server_requests 3"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("# TYPE server_request_us summary"),
            std::string::npos);
  // The recommend's id is the recommend-histogram's exemplar (the ping
  // that followed only touches server_request_us / op_us.ping).
  EXPECT_NE(metrics.find(
                "# exemplar server_op_us_recommend request_id=\"http-e2e-1\""),
            std::string::npos);
  const std::string trace = HttpGet(endpoint.port(), "/trace?id=http-e2e-1");
  EXPECT_NE(trace.find("200 OK"), std::string::npos);
  EXPECT_NE(trace.find("\"request.solve\""), std::string::npos) << trace;

  // Non-GET and garbage are rejected without wedging the listener.
  {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(endpoint.port()));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    const std::string post = "POST /metrics HTTP/1.0\r\n\r\n";
    ASSERT_EQ(::write(fd, post.data(), post.size()),
              static_cast<ssize_t>(post.size()));
    std::string response;
    char buf[512];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n <= 0) break;
      response.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    EXPECT_NE(response.find("405"), std::string::npos);
  }
  EXPECT_NE(HttpGet(endpoint.port(), "/healthz").find("200 OK"),
            std::string::npos);

  endpoint.Shutdown();
  server.Shutdown();
  server.Wait();
}

}  // namespace
}  // namespace cdpd
