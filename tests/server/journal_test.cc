// The flight recorder's durable layer: the record codec, the CRC, the
// segment header, and — most importantly — the reader's corruption
// contract: a torn or bit-flipped tail ends the stream cleanly at the
// last valid frame instead of crashing or replaying garbage.

#include "server/journal.h"

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace cdpd {
namespace {

JournalRecord SampleRecord(int i) {
  JournalRecord record;
  record.opcode = static_cast<uint8_t>(3);  // RECOMMEND.
  record.wire_status = i % 2 == 0 ? 0 : 3;
  record.flags = i % 2 == 0 ? JournalRecord::kFlagWireRequestId : 0;
  record.window_epoch = static_cast<uint64_t>(10 + i);
  record.mono_us = 1'000'000 + i * 250;
  record.wall_us = 1'700'000'000'000'000 + i * 250;
  record.duration_us = 42 + i;
  record.request_id = "req-" + std::to_string(i);
  record.payload = "k=" + std::to_string(i) + "\nmethod=optimal";
  record.response = "{\"epoch\":" + std::to_string(10 + i) + "}";
  return record;
}

void ExpectRecordsEqual(const JournalRecord& a, const JournalRecord& b) {
  EXPECT_EQ(a.opcode, b.opcode);
  EXPECT_EQ(a.wire_status, b.wire_status);
  EXPECT_EQ(a.flags, b.flags);
  EXPECT_EQ(a.window_epoch, b.window_epoch);
  EXPECT_EQ(a.mono_us, b.mono_us);
  EXPECT_EQ(a.wall_us, b.wall_us);
  EXPECT_EQ(a.duration_us, b.duration_us);
  EXPECT_EQ(a.request_id, b.request_id);
  EXPECT_EQ(a.payload, b.payload);
  EXPECT_EQ(a.response, b.response);
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Appends `n` sample records at `base` (one segment) and returns the
/// segment path.
std::string WriteJournal(const std::string& base, int n,
                         const JournalMeta& meta = {}) {
  JournalWriter writer;
  EXPECT_TRUE(writer.Open(JournalSegmentPath(base, 0), meta).ok());
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(writer.Append(SampleRecord(i)).ok());
  }
  EXPECT_TRUE(writer.Close().ok());
  return JournalSegmentPath(base, 0);
}

int64_t FileSize(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  return size;
}

void TruncateFile(const std::string& path, int64_t size) {
  ASSERT_EQ(::truncate(path.c_str(), size), 0) << path;
}

void FlipByte(const std::string& path, int64_t offset) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
  const int byte = std::fgetc(f);
  ASSERT_NE(byte, EOF);
  ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
  std::fputc(byte ^ 0xFF, f);
  std::fclose(f);
}

TEST(JournalTest, Crc32MatchesTheIeeeCheckValue) {
  // The standard CRC-32 check value ("123456789" -> 0xCBF43926) pins
  // the polynomial, reflection, and final xor all at once.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_NE(Crc32("a"), Crc32("b"));
}

TEST(JournalTest, RecordCodecRoundTrips) {
  for (int i = 0; i < 3; ++i) {
    const JournalRecord record = SampleRecord(i);
    const std::string bytes = EncodeJournalRecord(record);
    const Result<JournalRecord> decoded = DecodeJournalRecord(bytes);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ExpectRecordsEqual(record, decoded.value());
  }
  JournalRecord empty;
  const Result<JournalRecord> decoded =
      DecodeJournalRecord(EncodeJournalRecord(empty));
  ASSERT_TRUE(decoded.ok());
  ExpectRecordsEqual(empty, decoded.value());
}

TEST(JournalTest, RecordDecodeRejectsShortOrInconsistentBytes) {
  const std::string bytes = EncodeJournalRecord(SampleRecord(0));
  EXPECT_FALSE(DecodeJournalRecord("").ok());
  EXPECT_FALSE(DecodeJournalRecord(bytes.substr(0, 4)).ok());
  EXPECT_FALSE(
      DecodeJournalRecord(bytes.substr(0, bytes.size() - 1)).ok());
  // A trailing byte past the declared strings is inconsistent too.
  EXPECT_FALSE(DecodeJournalRecord(bytes + "x").ok());
}

TEST(JournalTest, MetaJsonRoundTripsIncludingUnconstrainedK) {
  JournalMeta meta;
  meta.rows = 123'456;
  meta.domain_size = 789;
  meta.block_size = 25;
  meta.window_statements = 400;
  meta.k = 3;
  meta.method = "greedy-seq";
  meta.max_indexes_per_config = 2;
  const Result<JournalMeta> parsed = JournalMeta::FromJson(meta.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().rows, 123'456);
  EXPECT_EQ(parsed.value().domain_size, 789);
  EXPECT_EQ(parsed.value().block_size, 25);
  EXPECT_EQ(parsed.value().window_statements, 400);
  ASSERT_TRUE(parsed.value().k.has_value());
  EXPECT_EQ(*parsed.value().k, 3);
  EXPECT_EQ(parsed.value().method, "greedy-seq");
  EXPECT_EQ(parsed.value().max_indexes_per_config, 2);

  meta.k.reset();  // Unconstrained serializes as JSON null.
  EXPECT_NE(meta.ToJson().find("\"k\":null"), std::string::npos);
  const Result<JournalMeta> unconstrained =
      JournalMeta::FromJson(meta.ToJson());
  ASSERT_TRUE(unconstrained.ok());
  EXPECT_FALSE(unconstrained.value().k.has_value());

  EXPECT_FALSE(JournalMeta::FromJson("not json").ok());
}

TEST(JournalTest, SegmentPathsAreZeroPaddedAndOrdered) {
  EXPECT_EQ(JournalSegmentPath("/tmp/j", 0), "/tmp/j.000000");
  EXPECT_EQ(JournalSegmentPath("/tmp/j", 7), "/tmp/j.000007");
  EXPECT_EQ(JournalSegmentPath("/tmp/j", 123456), "/tmp/j.123456");
}

TEST(JournalTest, WriterThenReaderRoundTripsAllRecords) {
  const std::string base = TempPath("journal_roundtrip");
  JournalMeta meta;
  meta.rows = 1000;
  meta.method = "merging";
  WriteJournal(base, 5, meta);

  JournalReader reader;
  ASSERT_TRUE(reader.Open(base).ok());
  EXPECT_EQ(reader.meta().rows, 1000);
  EXPECT_EQ(reader.meta().method, "merging");
  JournalRecord record;
  int count = 0;
  while (reader.Next(&record)) {
    ExpectRecordsEqual(SampleRecord(count), record);
    ++count;
  }
  EXPECT_EQ(count, 5);
  EXPECT_EQ(reader.records_read(), 5);
  EXPECT_FALSE(reader.truncated());
}

TEST(JournalTest, ReaderOpensOneSegmentFileDirectly) {
  const std::string base = TempPath("journal_single_segment");
  const std::string segment = WriteJournal(base, 2);
  JournalReader reader;
  ASSERT_TRUE(reader.Open(segment).ok());
  JournalRecord record;
  EXPECT_TRUE(reader.Next(&record));
  EXPECT_TRUE(reader.Next(&record));
  EXPECT_FALSE(reader.Next(&record));
  EXPECT_FALSE(reader.truncated());
}

TEST(JournalTest, ReaderWalksRotatedSegmentsInOrder) {
  const std::string base = TempPath("journal_rotated");
  JournalMeta meta;
  for (int segment = 0; segment < 3; ++segment) {
    JournalWriter writer;
    ASSERT_TRUE(writer.Open(JournalSegmentPath(base, segment), meta).ok());
    ASSERT_TRUE(writer.Append(SampleRecord(segment * 2)).ok());
    ASSERT_TRUE(writer.Append(SampleRecord(segment * 2 + 1)).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  JournalReader reader;
  ASSERT_TRUE(reader.Open(base).ok());
  ASSERT_EQ(reader.segments().size(), 3u);
  JournalRecord record;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(reader.Next(&record)) << i;
    ExpectRecordsEqual(SampleRecord(i), record);
  }
  EXPECT_FALSE(reader.Next(&record));
  EXPECT_FALSE(reader.truncated());
}

TEST(JournalTest, MissingJournalIsNotFound) {
  JournalReader reader;
  const Status status = reader.Open(TempPath("no_such_journal"));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(JournalTest, TornTailStopsCleanlyAtTheLastValidFrame) {
  const std::string base = TempPath("journal_torn");
  const std::string segment = WriteJournal(base, 4);
  // Tear the last frame mid-write: drop the final byte.
  TruncateFile(segment, FileSize(segment) - 1);

  JournalReader reader;
  ASSERT_TRUE(reader.Open(base).ok());
  JournalRecord record;
  int count = 0;
  while (reader.Next(&record)) ++count;
  EXPECT_EQ(count, 3);  // The first three frames survive intact.
  EXPECT_TRUE(reader.truncated());
  EXPECT_FALSE(reader.truncated_error().empty());
}

TEST(JournalTest, FlippedBitInAFrameIsCaughtByTheCrc) {
  const std::string base = TempPath("journal_bitflip");
  const std::string segment = WriteJournal(base, 3);
  // Corrupt a byte inside the last frame's body.
  FlipByte(segment, FileSize(segment) - 5);

  JournalReader reader;
  ASSERT_TRUE(reader.Open(base).ok());
  JournalRecord record;
  int count = 0;
  while (reader.Next(&record)) ++count;
  EXPECT_EQ(count, 2);
  EXPECT_TRUE(reader.truncated());
  EXPECT_NE(reader.truncated_error().find("CRC"), std::string::npos)
      << reader.truncated_error();
}

TEST(JournalTest, CorruptionInOneSegmentDropsTheLaterOnes) {
  const std::string base = TempPath("journal_mid_corruption");
  JournalMeta meta;
  for (int segment = 0; segment < 2; ++segment) {
    JournalWriter writer;
    ASSERT_TRUE(writer.Open(JournalSegmentPath(base, segment), meta).ok());
    ASSERT_TRUE(writer.Append(SampleRecord(segment)).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  // Damage segment 0's only frame: its record — and everything in
  // segment 1, whose position in the stream is now untrustworthy — is
  // dropped.
  const std::string first = JournalSegmentPath(base, 0);
  FlipByte(first, FileSize(first) - 5);

  JournalReader reader;
  ASSERT_TRUE(reader.Open(base).ok());
  JournalRecord record;
  EXPECT_FALSE(reader.Next(&record));
  EXPECT_TRUE(reader.truncated());
  EXPECT_EQ(reader.records_read(), 0);
}

TEST(JournalTest, BadMagicOnTheFirstSegmentFailsOpen) {
  const std::string base = TempPath("journal_bad_magic");
  const std::string segment = WriteJournal(base, 1);
  FlipByte(segment, 0);
  JournalReader reader;
  EXPECT_FALSE(reader.Open(base).ok());
}

}  // namespace
}  // namespace cdpd
