// The wire layer: length-prefixed frame encode/decode across a real
// socketpair, the payload cap, clean-EOF detection, and the
// Status <-> wire-status-code mapping the client reconstructs errors
// from.

#include "server/frame.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>

#include <gtest/gtest.h>

namespace cdpd {
namespace {

struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
};

TEST(FrameTest, EncodeLayoutIsLengthTagPayload) {
  std::string out;
  ASSERT_TRUE(EncodeFrame(7, "abc", &out).ok());
  ASSERT_EQ(out.size(), 5 + 3u);
  // Little-endian u32 payload length, then the tag byte, then payload.
  EXPECT_EQ(static_cast<unsigned char>(out[0]), 3);
  EXPECT_EQ(static_cast<unsigned char>(out[1]), 0);
  EXPECT_EQ(static_cast<unsigned char>(out[2]), 0);
  EXPECT_EQ(static_cast<unsigned char>(out[3]), 0);
  EXPECT_EQ(static_cast<unsigned char>(out[4]), 7);
  EXPECT_EQ(out.substr(5), "abc");
}

TEST(FrameTest, EncodeRejectsOversizedPayload) {
  std::string out;
  std::string huge(kMaxPayloadBytes + 1, 'x');
  const Status status = EncodeFrame(1, huge, &out);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(FrameTest, RoundTripOverSocketPair) {
  SocketPair pair;
  const std::string payload = "SELECT a FROM t WHERE a = 1;";
  ASSERT_TRUE(WriteFrame(pair.a, 3, payload).ok());
  Frame frame;
  ASSERT_TRUE(ReadFrame(pair.b, &frame).ok());
  EXPECT_EQ(frame.opcode, 3);
  EXPECT_EQ(frame.payload, payload);
}

TEST(FrameTest, EmptyPayloadRoundTrips) {
  SocketPair pair;
  ASSERT_TRUE(WriteFrame(pair.a, 0, "").ok());
  Frame frame;
  ASSERT_TRUE(ReadFrame(pair.b, &frame).ok());
  EXPECT_EQ(frame.opcode, 0);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(FrameTest, LargePayloadRoundTripsAcrossPartialReads) {
  // 1 MiB forces the kernel to split the transfer into many reads and
  // writes; ReadExact/WriteExact must stitch them back together. The
  // writer runs on its own thread so the socket buffers never deadlock.
  SocketPair pair;
  std::string payload(1 << 20, '\0');
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>(i * 131 % 251);
  }
  std::thread writer(
      [&] { EXPECT_TRUE(WriteFrame(pair.a, 9, payload).ok()); });
  Frame frame;
  ASSERT_TRUE(ReadFrame(pair.b, &frame).ok());
  writer.join();
  EXPECT_EQ(frame.opcode, 9);
  EXPECT_EQ(frame.payload, payload);
}

TEST(FrameTest, OversizedHeaderIsRejectedWithoutAllocating) {
  SocketPair pair;
  // Hand-craft a header claiming a payload far over the cap.
  unsigned char header[5] = {0xff, 0xff, 0xff, 0xff, 1};
  ASSERT_EQ(::send(pair.a, header, sizeof(header), 0),
            static_cast<ssize_t>(sizeof(header)));
  Frame frame;
  const Status status = ReadFrame(pair.b, &frame);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(FrameTest, CleanEofAtFrameBoundaryIsReported) {
  SocketPair pair;
  ::close(pair.a);
  pair.a = -1;
  Frame frame;
  bool clean_eof = false;
  const Status status = ReadFrame(pair.b, &frame, &clean_eof);
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(clean_eof);
}

TEST(FrameTest, EofMidFrameIsNotClean) {
  SocketPair pair;
  // A header promising 100 bytes, then the connection dies.
  unsigned char header[5] = {100, 0, 0, 0, 2};
  ASSERT_EQ(::send(pair.a, header, sizeof(header), 0),
            static_cast<ssize_t>(sizeof(header)));
  ::close(pair.a);
  pair.a = -1;
  Frame frame;
  bool clean_eof = false;
  const Status status = ReadFrame(pair.b, &frame, &clean_eof);
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(clean_eof);
}

TEST(FrameRequestIdTest, TagHelpersSplitTheFlagBit) {
  const uint8_t flagged = static_cast<uint8_t>(3 | kRequestIdFlag);
  EXPECT_TRUE(HasRequestId(flagged));
  EXPECT_EQ(BaseTag(flagged), 3);
  EXPECT_FALSE(HasRequestId(3));
  EXPECT_EQ(BaseTag(3), 3);
}

TEST(FrameRequestIdTest, ValidationRejectsTheRightIds) {
  EXPECT_TRUE(ValidateRequestId("abc-123_XYZ.99").ok());
  EXPECT_TRUE(ValidateRequestId(std::string(kMaxRequestIdBytes, 'a')).ok());
  EXPECT_FALSE(ValidateRequestId("").ok());
  EXPECT_FALSE(
      ValidateRequestId(std::string(kMaxRequestIdBytes + 1, 'a')).ok());
  EXPECT_FALSE(ValidateRequestId("has space").ok());
  EXPECT_FALSE(ValidateRequestId("has\"quote").ok());
  EXPECT_FALSE(ValidateRequestId("has\\backslash").ok());
  EXPECT_FALSE(ValidateRequestId("has\nnewline").ok());
  EXPECT_FALSE(ValidateRequestId(std::string("nul\0byte", 8)).ok());
}

TEST(FrameRequestIdTest, AttachSplitRoundTrip) {
  std::string wire;
  ASSERT_TRUE(AttachRequestId("req-7", "k=2\nmethod=optimal", &wire).ok());
  EXPECT_EQ(wire, "req-7\nk=2\nmethod=optimal");
  std::string_view id;
  std::string_view payload;
  ASSERT_TRUE(SplitRequestId(wire, &id, &payload).ok());
  EXPECT_EQ(id, "req-7");
  EXPECT_EQ(payload, "k=2\nmethod=optimal");
  // Empty inner payload (PING with an id) round-trips too.
  ASSERT_TRUE(AttachRequestId("p", "", &wire).ok());
  ASSERT_TRUE(SplitRequestId(wire, &id, &payload).ok());
  EXPECT_EQ(id, "p");
  EXPECT_TRUE(payload.empty());
}

TEST(FrameRequestIdTest, SplitRejectsHeaderlessOrInvalidPayloads) {
  std::string_view id;
  std::string_view payload;
  EXPECT_FALSE(SplitRequestId("no newline anywhere", &id, &payload).ok());
  EXPECT_FALSE(SplitRequestId("\nempty header", &id, &payload).ok());
  EXPECT_FALSE(SplitRequestId("bad id\nrest", &id, &payload).ok());
}

TEST(FrameRequestIdTest, FlaggedFrameRoundTripsOverSocketPair) {
  SocketPair pair;
  std::string wire;
  ASSERT_TRUE(AttachRequestId("sock-1", "payload", &wire).ok());
  ASSERT_TRUE(
      WriteFrame(pair.a, static_cast<uint8_t>(2 | kRequestIdFlag), wire)
          .ok());
  Frame frame;
  ASSERT_TRUE(ReadFrame(pair.b, &frame).ok());
  ASSERT_TRUE(HasRequestId(frame.opcode));
  EXPECT_EQ(BaseTag(frame.opcode), 2);
  std::string_view id;
  std::string_view payload;
  ASSERT_TRUE(SplitRequestId(frame.payload, &id, &payload).ok());
  EXPECT_EQ(id, "sock-1");
  EXPECT_EQ(payload, "payload");
}

TEST(FrameTest, WireStatusCodesRoundTripTheStatusClass) {
  const Status statuses[] = {
      Status::InvalidArgument("bad"),    Status::NotFound("gone"),
      Status::FailedPrecondition("no"), Status::ResourceExhausted("full"),
      Status::DeadlineExceeded("late"), Status::Internal("boom"),
  };
  for (const Status& status : statuses) {
    const uint8_t wire = WireStatusCode(status);
    EXPECT_NE(wire, 0) << status.ToString();
    const Status back = StatusFromWire(wire, status.message());
    EXPECT_EQ(back.code(), status.code()) << status.ToString();
    EXPECT_EQ(back.message(), status.message());
  }
  EXPECT_EQ(WireStatusCode(Status::OK()), 0);
}

}  // namespace
}  // namespace cdpd
