// The wire layer: length-prefixed frame encode/decode across a real
// socketpair, the payload cap, clean-EOF detection, and the
// Status <-> wire-status-code mapping the client reconstructs errors
// from.

#include "server/frame.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>

#include <gtest/gtest.h>

namespace cdpd {
namespace {

struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
};

TEST(FrameTest, EncodeLayoutIsLengthTagPayload) {
  std::string out;
  ASSERT_TRUE(EncodeFrame(7, "abc", &out).ok());
  ASSERT_EQ(out.size(), 5 + 3u);
  // Little-endian u32 payload length, then the tag byte, then payload.
  EXPECT_EQ(static_cast<unsigned char>(out[0]), 3);
  EXPECT_EQ(static_cast<unsigned char>(out[1]), 0);
  EXPECT_EQ(static_cast<unsigned char>(out[2]), 0);
  EXPECT_EQ(static_cast<unsigned char>(out[3]), 0);
  EXPECT_EQ(static_cast<unsigned char>(out[4]), 7);
  EXPECT_EQ(out.substr(5), "abc");
}

TEST(FrameTest, EncodeRejectsOversizedPayload) {
  std::string out;
  std::string huge(kMaxPayloadBytes + 1, 'x');
  const Status status = EncodeFrame(1, huge, &out);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(FrameTest, RoundTripOverSocketPair) {
  SocketPair pair;
  const std::string payload = "SELECT a FROM t WHERE a = 1;";
  ASSERT_TRUE(WriteFrame(pair.a, 3, payload).ok());
  Frame frame;
  ASSERT_TRUE(ReadFrame(pair.b, &frame).ok());
  EXPECT_EQ(frame.opcode, 3);
  EXPECT_EQ(frame.payload, payload);
}

TEST(FrameTest, EmptyPayloadRoundTrips) {
  SocketPair pair;
  ASSERT_TRUE(WriteFrame(pair.a, 0, "").ok());
  Frame frame;
  ASSERT_TRUE(ReadFrame(pair.b, &frame).ok());
  EXPECT_EQ(frame.opcode, 0);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(FrameTest, LargePayloadRoundTripsAcrossPartialReads) {
  // 1 MiB forces the kernel to split the transfer into many reads and
  // writes; ReadExact/WriteExact must stitch them back together. The
  // writer runs on its own thread so the socket buffers never deadlock.
  SocketPair pair;
  std::string payload(1 << 20, '\0');
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>(i * 131 % 251);
  }
  std::thread writer(
      [&] { EXPECT_TRUE(WriteFrame(pair.a, 9, payload).ok()); });
  Frame frame;
  ASSERT_TRUE(ReadFrame(pair.b, &frame).ok());
  writer.join();
  EXPECT_EQ(frame.opcode, 9);
  EXPECT_EQ(frame.payload, payload);
}

TEST(FrameTest, OversizedHeaderIsRejectedWithoutAllocating) {
  SocketPair pair;
  // Hand-craft a header claiming a payload far over the cap.
  unsigned char header[5] = {0xff, 0xff, 0xff, 0xff, 1};
  ASSERT_EQ(::send(pair.a, header, sizeof(header), 0),
            static_cast<ssize_t>(sizeof(header)));
  Frame frame;
  const Status status = ReadFrame(pair.b, &frame);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(FrameTest, CleanEofAtFrameBoundaryIsReported) {
  SocketPair pair;
  ::close(pair.a);
  pair.a = -1;
  Frame frame;
  bool clean_eof = false;
  const Status status = ReadFrame(pair.b, &frame, &clean_eof);
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(clean_eof);
}

TEST(FrameTest, EofMidFrameIsNotClean) {
  SocketPair pair;
  // A header promising 100 bytes, then the connection dies.
  unsigned char header[5] = {100, 0, 0, 0, 2};
  ASSERT_EQ(::send(pair.a, header, sizeof(header), 0),
            static_cast<ssize_t>(sizeof(header)));
  ::close(pair.a);
  pair.a = -1;
  Frame frame;
  bool clean_eof = false;
  const Status status = ReadFrame(pair.b, &frame, &clean_eof);
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(clean_eof);
}

TEST(FrameTest, WireStatusCodesRoundTripTheStatusClass) {
  const Status statuses[] = {
      Status::InvalidArgument("bad"),    Status::NotFound("gone"),
      Status::FailedPrecondition("no"), Status::ResourceExhausted("full"),
      Status::DeadlineExceeded("late"), Status::Internal("boom"),
  };
  for (const Status& status : statuses) {
    const uint8_t wire = WireStatusCode(status);
    EXPECT_NE(wire, 0) << status.ToString();
    const Status back = StatusFromWire(wire, status.message());
    EXPECT_EQ(back.code(), status.code()) << status.ToString();
    EXPECT_EQ(back.message(), status.message());
  }
  EXPECT_EQ(WireStatusCode(Status::OK()), 0);
}

}  // namespace
}  // namespace cdpd
