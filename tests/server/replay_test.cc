// The replay harness: the acceptance property of the flight recorder
// — a session recorded through a real server replays in-process with
// every deterministic response reproduced bit-identically — plus the
// corruption and tamper edges and the deterministic-core projection.

#include "server/replay.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "server/advisor_server.h"
#include "server/client.h"
#include "server/frame.h"
#include "server/journal.h"
#include "server/recorder.h"

namespace cdpd {
namespace {

/// The scale the tests serve and replay at. The replay service is
/// rebuilt purely from the journal's meta header, so every field here
/// must be representable in JournalMeta.
ServiceOptions SmallServiceOptions() {
  ServiceOptions options;
  options.rows = 50'000;
  options.domain_size = 100'000;
  options.block_size = 5;
  options.window_statements = 6;  // Two 5-statement ingests slide it.
  options.k = 2;
  return options;
}

JournalMeta MetaFor(const ServiceOptions& options) {
  JournalMeta meta;
  meta.rows = options.rows;
  meta.domain_size = options.domain_size;
  meta.block_size = static_cast<int64_t>(options.block_size);
  meta.window_statements = static_cast<int64_t>(options.window_statements);
  meta.k = options.k;
  meta.method = std::string(OptimizerMethodToString(options.method));
  meta.max_indexes_per_config = options.max_indexes_per_config;
  return meta;
}

std::string TraceA() {
  return "SELECT a FROM t WHERE a = 1;\n"
         "SELECT b FROM t WHERE b = 2;\n"
         "SELECT c FROM t WHERE d = 3;\n"
         "UPDATE t SET a = 4 WHERE b = 5;\n"
         "SELECT d FROM t WHERE b = 6;\n";
}

std::string TraceB() {
  return "SELECT a FROM t WHERE c = 7;\n"
         "SELECT b FROM t WHERE a = 8;\n"
         "UPDATE t SET c = 9 WHERE d = 10;\n"
         "SELECT c FROM t WHERE c = 11;\n"
         "SELECT d FROM t WHERE a = 12;\n";
}

/// Serves `payload` through a live service and returns the journal
/// record the transport would have persisted for it.
JournalRecord ServeAndRecord(AdvisorService* service, ServerOp op,
                             const std::string& payload,
                             const std::string& id, int64_t mono_us) {
  RequestContext ctx;
  ctx.request_id = id;
  const Result<std::string> result =
      service->Handle(static_cast<uint8_t>(op), payload, ctx);
  JournalRecord record;
  record.opcode = static_cast<uint8_t>(op);
  record.wire_status = result.ok() ? 0 : WireStatusCode(result.status());
  record.flags = JournalRecord::kFlagWireRequestId;
  record.window_epoch = service->epoch();
  record.mono_us = mono_us;
  record.wall_us = mono_us;
  record.duration_us = 5;
  record.request_id = id;
  record.payload = payload;
  record.response = result.ok() ? result.value() : result.status().message();
  return record;
}

/// Records a scripted session (2 window-sliding ingests, a what-if, 4
/// recommends) into a journal at `base` and returns the records.
std::vector<JournalRecord> RecordScriptedSession(const std::string& base) {
  AdvisorService service(SmallServiceOptions());
  std::vector<JournalRecord> records;
  int64_t mono = 0;
  const auto add = [&](ServerOp op, const std::string& payload) {
    records.push_back(ServeAndRecord(&service, op, payload,
                                     "s-" + std::to_string(records.size()),
                                     mono += 1000));
  };
  add(ServerOp::kIngest, TraceA());
  add(ServerOp::kRecommend, "");
  add(ServerOp::kRecommend, "k=1");
  add(ServerOp::kIngest, TraceB());
  add(ServerOp::kWhatIf, "a");
  add(ServerOp::kRecommend, "k=2\nmethod=greedy-seq");
  add(ServerOp::kRecommend, "method=merging");

  JournalWriter writer;
  EXPECT_TRUE(
      writer.Open(JournalSegmentPath(base, 0),
                  MetaFor(SmallServiceOptions()))
          .ok());
  for (const JournalRecord& record : records) {
    EXPECT_TRUE(writer.Append(record).ok());
  }
  EXPECT_TRUE(writer.Close().ok());
  return records;
}

TEST(ReplayTest, DeterministicCoreDropsTimingsAndStatsKeepsTheSchedule) {
  const std::string response =
      "{\"epoch\":3,\"k\":2,\"total_cost\":12.5,\"wall_seconds\":0.0123,"
      "\"cost_cache_hits\":7,\"schedule\":[\"{I(a)}\"],"
      "\"stats\":{\"mem_peak\":123}}";
  const std::string core = DeterministicRecommendCore(response);
  EXPECT_NE(core.find("\"total_cost\":12.5"), std::string::npos) << core;
  EXPECT_NE(core.find("\"schedule\":[\"{I(a)}\"]"), std::string::npos);
  EXPECT_EQ(core.find("wall_seconds"), std::string::npos) << core;
  EXPECT_EQ(core.find("cost_cache_hits"), std::string::npos);
  EXPECT_EQ(core.find("\"stats\""), std::string::npos);

  // Two answers differing only in timing/cache noise project equally.
  const std::string other =
      "{\"epoch\":3,\"k\":2,\"total_cost\":12.5,\"wall_seconds\":0.9,"
      "\"cost_cache_hits\":0,\"schedule\":[\"{I(a)}\"],"
      "\"stats\":{\"mem_peak\":456}}";
  EXPECT_EQ(core, DeterministicRecommendCore(other));

  // Different schedules stay different.
  const std::string changed =
      "{\"epoch\":3,\"k\":2,\"total_cost\":12.5,\"wall_seconds\":0.9,"
      "\"cost_cache_hits\":0,\"schedule\":[\"{I(b)}\"],"
      "\"stats\":{\"mem_peak\":456}}";
  EXPECT_NE(core, DeterministicRecommendCore(changed));

  // An unexpected shape is compared as-is rather than misprojected.
  EXPECT_EQ(DeterministicRecommendCore("{\"error\":1}"), "{\"error\":1}");
}

TEST(ReplayTest, ServiceOptionsRebuildFromMeta) {
  JournalMeta meta = MetaFor(SmallServiceOptions());
  const Result<ServiceOptions> rebuilt = ServiceOptionsFromMeta(meta);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_EQ(rebuilt.value().rows, 50'000);
  EXPECT_EQ(rebuilt.value().block_size, 5u);
  EXPECT_EQ(rebuilt.value().window_statements, 6u);
  ASSERT_TRUE(rebuilt.value().k.has_value());
  EXPECT_EQ(*rebuilt.value().k, 2);
  EXPECT_EQ(rebuilt.value().method, OptimizerMethod::kOptimal);

  meta.method = "no-such-method";
  EXPECT_FALSE(ServiceOptionsFromMeta(meta).ok());
}

// THE acceptance property: a session served by a real AdvisorServer
// over TCP with a live Recorder attached — two window-sliding INGESTs,
// a WHATIF, four RECOMMENDs — replays in-process from the journal with
// every deterministic response reproduced bit-identically.
TEST(ReplayTest, RecordedTcpSessionReplaysBitIdentically) {
  const std::string base = ::testing::TempDir() + "/replay_e2e_journal";
  // The recorder resumes after existing segments; drop any journal a
  // previous test run left behind.
  for (int i = 0;; ++i) {
    if (std::remove(JournalSegmentPath(base, i).c_str()) != 0) break;
  }
  {
    AdvisorService service(SmallServiceOptions());
    Recorder::Options recorder_options;
    recorder_options.path = base;
    recorder_options.meta = MetaFor(SmallServiceOptions());
    auto recorder =
        Recorder::Open(std::move(recorder_options), service.registry());
    ASSERT_TRUE(recorder.ok()) << recorder.status().ToString();
    service.set_recorder(recorder->get());

    AdvisorServer server(&service);
    ASSERT_TRUE(server.Start().ok());
    AdvisorClient client =
        AdvisorClient::Connect("127.0.0.1", server.port()).value();
    client.set_next_request_id("e2e-ingest-a");
    ASSERT_TRUE(client.Ingest(TraceA()).ok());
    client.set_next_request_id("e2e-rec-1");
    ASSERT_TRUE(client.Recommend("").ok());
    client.set_next_request_id("e2e-rec-2");
    ASSERT_TRUE(client.Recommend("k=1").ok());
    client.set_next_request_id("e2e-ingest-b");
    ASSERT_TRUE(client.Ingest(TraceB()).ok());  // Slides the window.
    client.set_next_request_id("e2e-whatif");
    ASSERT_TRUE(client.WhatIf("a").ok());
    client.set_next_request_id("e2e-rec-3");
    ASSERT_TRUE(client.Recommend("k=2\nmethod=greedy-seq").ok());
    client.set_next_request_id("e2e-rec-4");
    ASSERT_TRUE(client.Recommend("method=merging").ok());
    ASSERT_TRUE(client.Shutdown().ok());
    server.Wait();

    service.set_recorder(nullptr);
    (*recorder)->Close();
    EXPECT_EQ((*recorder)->frames_dropped(), 0);
  }

  const Result<ReplayOutcome> replayed = ReplayJournal(base, ReplayOptions{});
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  const ReplayOutcome& outcome = replayed.value();
  EXPECT_EQ(outcome.frames, 8);    // 7 requests + the SHUTDOWN frame.
  EXPECT_EQ(outcome.replayed, 7);  // SHUTDOWN is not replayable.
  EXPECT_EQ(outcome.skipped, 1);
  // Every successful PING/INGEST/WHATIF/RECOMMEND response is
  // deterministic here (no deadlines) — all 7 are compared.
  EXPECT_EQ(outcome.compared, 7);
  EXPECT_EQ(outcome.mismatches, 0)
      << (outcome.mismatch_details.empty()
              ? ""
              : outcome.mismatch_details.front());
  EXPECT_FALSE(outcome.truncated);
  EXPECT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.op_counts.at("recommend"), 4);
  EXPECT_EQ(outcome.op_counts.at("ingest"), 2);
}

TEST(ReplayTest, InProcessSessionsReplayTooAndCountPerOp) {
  const std::string base = ::testing::TempDir() + "/replay_scripted_journal";
  const std::vector<JournalRecord> records = RecordScriptedSession(base);
  ASSERT_EQ(records.size(), 7u);

  const Result<ReplayOutcome> replayed = ReplayJournal(base, ReplayOptions{});
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_EQ(replayed.value().frames, 7);
  EXPECT_EQ(replayed.value().compared, 7);
  EXPECT_EQ(replayed.value().mismatches, 0)
      << (replayed.value().mismatch_details.empty()
              ? ""
              : replayed.value().mismatch_details.front());
}

TEST(ReplayTest, CorruptTailStopsAtTheLastValidFrameWithoutMismatches) {
  const std::string base = ::testing::TempDir() + "/replay_corrupt_journal";
  RecordScriptedSession(base);
  const std::string segment = JournalSegmentPath(base, 0);

  // Tear the final frame: everything before it still verifies.
  std::FILE* f = std::fopen(segment.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(::truncate(segment.c_str(), size - 7), 0);

  const Result<ReplayOutcome> replayed = ReplayJournal(base, ReplayOptions{});
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  const ReplayOutcome& outcome = replayed.value();
  EXPECT_EQ(outcome.frames, 6);  // The 7th frame is gone, not garbled.
  EXPECT_EQ(outcome.mismatches, 0);
  EXPECT_TRUE(outcome.truncated);
  EXPECT_FALSE(outcome.truncated_error.empty());
}

TEST(ReplayTest, TamperedResponseIsDetectedAsAMismatch) {
  const std::string base = ::testing::TempDir() + "/replay_tampered_journal";
  std::vector<JournalRecord> records = RecordScriptedSession(base);

  // Rewrite the journal with one recommend's schedule altered — the
  // replayed service cannot reproduce the forged answer.
  bool tampered = false;
  for (JournalRecord& record : records) {
    const size_t at = record.response.find("\"schedule\":[");
    if (record.opcode == static_cast<uint8_t>(ServerOp::kRecommend) &&
        record.wire_status == 0 && !tampered &&
        at != std::string::npos) {
      record.response.insert(at + strlen("\"schedule\":["), "\"{FORGED}\",");
      tampered = true;
    }
  }
  ASSERT_TRUE(tampered);
  const std::string tampered_base = base + "_rewritten";
  JournalWriter writer;
  ASSERT_TRUE(writer.Open(JournalSegmentPath(tampered_base, 0),
                          MetaFor(SmallServiceOptions()))
                  .ok());
  for (const JournalRecord& record : records) {
    ASSERT_TRUE(writer.Append(record).ok());
  }
  ASSERT_TRUE(writer.Close().ok());

  const Result<ReplayOutcome> replayed =
      ReplayJournal(tampered_base, ReplayOptions{});
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_EQ(replayed.value().mismatches, 1);
  ASSERT_FALSE(replayed.value().mismatch_details.empty());
  EXPECT_NE(replayed.value().mismatch_details.front().find("diverge"),
            std::string::npos)
      << replayed.value().mismatch_details.front();
  EXPECT_FALSE(replayed.value().ok());
}

}  // namespace
}  // namespace cdpd
