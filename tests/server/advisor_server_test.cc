// AdvisorServer end to end: real TCP on a loopback ephemeral port,
// real AdvisorClient connections. Covers the transport lifecycle
// (start / serve / client-driven shutdown), concurrent clients, and
// error mapping across the wire (a server-side Status comes back as
// the same code with the same message).

#include "server/advisor_server.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "server/client.h"

namespace cdpd {
namespace {

ServiceOptions TestServiceOptions() {
  ServiceOptions options;
  options.rows = 50'000;
  options.domain_size = 100'000;
  options.block_size = 5;
  options.k = 2;
  options.num_threads = 2;
  return options;
}

std::string TestTrace() {
  return "SELECT a FROM t WHERE a = 1;\n"
         "SELECT b FROM t WHERE b = 2;\n"
         "UPDATE t SET c = 3 WHERE d = 4;\n"
         "SELECT c FROM t WHERE d = 5;\n"
         "SELECT d FROM t WHERE b = 6;\n";
}

TEST(AdvisorServerTest, ServesTheFullOpSetOverTcp) {
  AdvisorService service(TestServiceOptions());
  AdvisorServer server(&service);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  AdvisorClient client =
      AdvisorClient::Connect("127.0.0.1", server.port()).value();
  EXPECT_TRUE(client.Ping().ok());

  const std::string ack = client.Ingest(TestTrace()).value();
  EXPECT_NE(ack.find("\"accepted\":5"), std::string::npos) << ack;

  const std::string priced = client.WhatIf("a").value();
  EXPECT_NE(priced.find("\"exec_cost\""), std::string::npos) << priced;

  const std::string recommended = client.Recommend("k=2\nmethod=optimal")
                                      .value();
  EXPECT_NE(recommended.find("\"schedule\""), std::string::npos)
      << recommended;
  EXPECT_NE(recommended.find("\"total_cost\""), std::string::npos);

  const std::string stats = client.Stats().value();
  EXPECT_NE(stats.find("\"counters\""), std::string::npos) << stats;
  EXPECT_NE(stats.find("server.requests"), std::string::npos) << stats;

  // Client-driven shutdown: acked, then the server stops and Wait()
  // returns.
  EXPECT_TRUE(client.Shutdown().ok());
  server.Wait();
  EXPECT_FALSE(AdvisorClient::Connect("127.0.0.1", server.port()).ok());
}

TEST(AdvisorServerTest, ServerSideErrorsCrossTheWireWithCodeAndMessage) {
  AdvisorService service(TestServiceOptions());
  AdvisorServer server(&service);
  ASSERT_TRUE(server.Start().ok());
  AdvisorClient client =
      AdvisorClient::Connect("127.0.0.1", server.port()).value();

  // Unknown opcode.
  const auto bad_op = client.Call(static_cast<ServerOp>(99), "");
  ASSERT_FALSE(bad_op.ok());
  EXPECT_EQ(bad_op.status().code(), StatusCode::kInvalidArgument);

  // A connection survives an error reply: the same client keeps going.
  EXPECT_TRUE(client.Ping().ok());

  // Recommend on an empty window.
  const auto empty_window = client.Recommend("");
  ASSERT_FALSE(empty_window.ok());
  EXPECT_EQ(empty_window.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(empty_window.status().message().find("INGEST"),
            std::string::npos)
      << empty_window.status().ToString();

  // Malformed payloads: a bad config spec (the schema lookup's
  // NotFound survives the wire) and a bad request line.
  EXPECT_EQ(client.WhatIf("nosuchcolumn").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(client.Recommend("k=two").status().code(),
            StatusCode::kInvalidArgument);

  server.Shutdown();
  server.Wait();
}

TEST(AdvisorServerTest, ConcurrentClientsShareOneResidentService) {
  AdvisorService service(TestServiceOptions());
  AdvisorServer server(&service);
  ASSERT_TRUE(server.Start().ok());

  {
    AdvisorClient seeder =
        AdvisorClient::Connect("127.0.0.1", server.port()).value();
    ASSERT_TRUE(seeder.Ingest(TestTrace()).ok());
  }

  constexpr int kClients = 6;
  constexpr int kRequestsPerClient = 8;
  std::atomic<int> failures{0};
  std::vector<std::string> recommendations(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto connected = AdvisorClient::Connect("127.0.0.1", server.port());
      if (!connected.ok()) {
        failures.fetch_add(1);
        return;
      }
      AdvisorClient client = std::move(connected).value();
      for (int r = 0; r < kRequestsPerClient; ++r) {
        Result<std::string> reply =
            (r % 2 == 0) ? client.WhatIf("a") : client.Recommend("k=2");
        if (!reply.ok()) {
          failures.fetch_add(1);
          return;
        }
        if (r % 2 == 1) recommendations[c] = std::move(reply).value();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  ASSERT_EQ(failures.load(), 0);

  // Same window, same options: every client saw the same answer (the
  // resident solution plus determinism make this exact).
  for (int c = 1; c < kClients; ++c) {
    std::string left = recommendations[0];
    std::string right = recommendations[c];
    // reused_resident differs between the first solver and the reusers;
    // normalize it away before comparing.
    const std::string cold = "\"reused_resident\":false";
    const std::string warm = "\"reused_resident\":true";
    size_t pos;
    while ((pos = left.find(warm)) != std::string::npos) {
      left.replace(pos, warm.size(), cold);
    }
    while ((pos = right.find(warm)) != std::string::npos) {
      right.replace(pos, warm.size(), cold);
    }
    // wall_seconds and stats vary per call; compare the schedule slice.
    const size_t ls = left.find("\"schedule\"");
    const size_t rs = right.find("\"schedule\"");
    ASSERT_NE(ls, std::string::npos);
    ASSERT_NE(rs, std::string::npos);
    const size_t le = left.find("]", ls);
    const size_t re = right.find("]", rs);
    EXPECT_EQ(left.substr(ls, le - ls), right.substr(rs, re - rs));
  }

  // The request counter saw every exchange (seeder connect + ingest,
  // then kClients * kRequestsPerClient ops).
  const MetricsSnapshot snapshot = service.registry()->Snapshot();
  EXPECT_GE(snapshot.CounterValue("server.requests"),
            int64_t{kClients} * kRequestsPerClient + 1);
  EXPECT_EQ(snapshot.CounterValue("server.request_errors"), 0);

  server.Shutdown();
  server.Wait();
}

TEST(AdvisorServerTest, RequestIdsRoundTripIntoSlowLogAndTraces) {
  AdvisorService service(TestServiceOptions());
  AdvisorServer server(&service);
  ASSERT_TRUE(server.Start().ok());
  AdvisorClient client =
      AdvisorClient::Connect("127.0.0.1", server.port()).value();

  // Default: every call carries a generated id the server echoes.
  ASSERT_TRUE(client.Ingest(TestTrace()).ok());
  EXPECT_FALSE(client.last_request_id().empty());

  // A caller-supplied id resolves server-side with the span tree.
  client.set_next_request_id("trace-me-1");
  ASSERT_TRUE(client.Recommend("k=2\nmethod=optimal").ok());
  EXPECT_EQ(client.last_request_id(), "trace-me-1");
  // Metrics and the slow-log entry are recorded after the response
  // write; a follow-up request on the same connection serializes past
  // that (the per-connection loop is strictly sequential).
  ASSERT_TRUE(client.Ping().ok());
  const auto entry = service.slow_log()->Find("trace-me-1");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->op, "recommend");
  EXPECT_EQ(entry->wire_status, 0);
  EXPECT_GT(entry->duration_us, 0);
  bool saw_parse = false, saw_solve = false, saw_respond = false;
  for (const Tracer::Event& span : entry->spans) {
    const std::string_view name = span.name;
    saw_parse |= name == "request.parse";
    saw_solve |= name == "request.solve";
    saw_respond |= name == "request.respond";
  }
  EXPECT_TRUE(saw_parse);
  EXPECT_TRUE(saw_solve);
  EXPECT_TRUE(saw_respond);

  // The override is one-shot: the next call generates again.
  ASSERT_TRUE(client.WhatIf("a").ok());
  EXPECT_NE(client.last_request_id(), "trace-me-1");
  const std::string whatif_id = client.last_request_id();
  ASSERT_TRUE(client.Ping().ok());  // Serialize past the record.
  EXPECT_TRUE(service.slow_log()->Find(whatif_id).has_value());

  // Error replies echo the id too, and land in the slow log with the
  // wire status.
  client.set_next_request_id("trace-err-1");
  EXPECT_FALSE(client.Recommend("k=two").ok());
  EXPECT_EQ(client.last_request_id(), "trace-err-1");
  ASSERT_TRUE(client.Ping().ok());  // Serialize past the record.
  const auto err_entry = service.slow_log()->Find("trace-err-1");
  ASSERT_TRUE(err_entry.has_value());
  EXPECT_NE(err_entry->wire_status, 0);

  // An invalid caller id fails client-side before hitting the wire.
  client.set_next_request_id("bad id with spaces");
  EXPECT_FALSE(client.Ping().ok());
  EXPECT_TRUE(client.Ping().ok());  // Connection still healthy.

  // The histograms carry the latest *traced* id as their exemplar —
  // the pings that interleaved above must not overwrite it with an id
  // /trace?id= would 404 on. The last traced request was trace-err-1.
  const MetricsSnapshot snapshot = service.registry()->Snapshot();
  const auto it = snapshot.histograms.find("server.request_us");
  ASSERT_NE(it, snapshot.histograms.end());
  EXPECT_EQ(it->second.exemplar_id, "trace-err-1");
  EXPECT_GT(snapshot.histograms.at("server.op_us.recommend").count, 0);

  server.Shutdown();
  server.Wait();
}

TEST(AdvisorServerTest, UntracedOpsLeaveNoExemplar) {
  // Pings and stats polls never enter the slow log, so they must not
  // advertise their ids as exemplars either — every exemplar the
  // exposition shows has to resolve via /trace?id=.
  AdvisorService service(TestServiceOptions());
  AdvisorServer server(&service);
  ASSERT_TRUE(server.Start().ok());
  AdvisorClient client =
      AdvisorClient::Connect("127.0.0.1", server.port()).value();
  ASSERT_TRUE(client.Ping().ok());
  ASSERT_TRUE(client.Stats().ok());
  ASSERT_TRUE(client.Ping().ok());  // Serialize past the stats record.

  // The last ping's own record may still be in flight (it commits
  // after the response write); the first two ops are guaranteed in.
  const MetricsSnapshot snapshot = service.registry()->Snapshot();
  const auto latency = snapshot.histograms.find("server.request_us");
  ASSERT_NE(latency, snapshot.histograms.end());
  EXPECT_GE(latency->second.count, 2);
  EXPECT_TRUE(latency->second.exemplar_id.empty());
  const auto ping = snapshot.histograms.find("server.op_us.ping");
  ASSERT_NE(ping, snapshot.histograms.end());
  EXPECT_TRUE(ping->second.exemplar_id.empty());

  server.Shutdown();
  server.Wait();
}

TEST(AdvisorServerTest, UnflaggedFramesRoundTripBitIdentically) {
  // A pre-request-id client: hand-built frames, no flag bit. The
  // response bytes must be exactly what the old protocol produced —
  // same tag byte, no id header in the payload.
  AdvisorService service(TestServiceOptions());
  AdvisorServer server(&service);
  ASSERT_TRUE(server.Start().ok());

  AdvisorClient raw =
      AdvisorClient::Connect("127.0.0.1", server.port()).value();
  raw.set_request_ids_enabled(false);

  // PING: empty payload both ways, tag byte exactly 0.
  ASSERT_TRUE(raw.Ping().ok());
  EXPECT_TRUE(raw.last_request_id().empty());

  // Cross-check at the frame level on a second connection.
  {
    AdvisorClient probe =
        AdvisorClient::Connect("127.0.0.1", server.port()).value();
    probe.set_request_ids_enabled(false);
    ASSERT_TRUE(probe.Ingest(TestTrace()).ok());
    const Result<std::string> ack = probe.Ingest(TestTrace());
    ASSERT_TRUE(ack.ok());
    // JSON body starts immediately — no "id\n" prefix.
    EXPECT_EQ(ack->front(), '{');
  }

  // Mixed traffic on one server: flagged and unflagged clients
  // interleave without confusing each other.
  AdvisorClient flagged =
      AdvisorClient::Connect("127.0.0.1", server.port()).value();
  ASSERT_TRUE(flagged.WhatIf("a").ok());
  EXPECT_FALSE(flagged.last_request_id().empty());
  ASSERT_TRUE(raw.WhatIf("a").ok());
  EXPECT_TRUE(raw.last_request_id().empty());

  // The same logical answer comes back on both paths.
  const std::string with_id = flagged.WhatIf("c,d").value();
  const std::string without_id = raw.WhatIf("c,d").value();
  EXPECT_EQ(with_id, without_id);

  server.Shutdown();
  server.Wait();
}

TEST(AdvisorServerTest, ShutdownIsIdempotentAndWaitReturns) {
  AdvisorService service(TestServiceOptions());
  AdvisorServer server(&service);
  ASSERT_TRUE(server.Start().ok());
  server.Shutdown();
  server.Shutdown();  // second call is a no-op
  server.Wait();      // returns immediately once stopped
}

}  // namespace
}  // namespace cdpd
