// The bounded slow-request record: slowest-N ordering and eviction,
// the recent ring /trace?id= resolves from, and the JSON shapes the
// HTTP endpoints serve.

#include "server/slow_log.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace cdpd {
namespace {

SlowLogEntry Entry(const std::string& id, int64_t duration_us) {
  SlowLogEntry entry;
  entry.request_id = id;
  entry.op = "recommend";
  entry.duration_us = duration_us;
  return entry;
}

TEST(SlowLogTest, KeepsTheSlowestInOrder) {
  SlowLog log(/*capacity=*/3, /*recent_capacity=*/8);
  log.Record(Entry("a", 10));
  log.Record(Entry("b", 50));
  log.Record(Entry("c", 30));
  log.Record(Entry("d", 40));  // Evicts "a" (the fastest resident).
  log.Record(Entry("e", 5));   // Under the floor: not admitted.
  const std::vector<SlowLogEntry> slowest = log.Slowest();
  ASSERT_EQ(slowest.size(), 3u);
  EXPECT_EQ(slowest[0].request_id, "b");
  EXPECT_EQ(slowest[1].request_id, "d");
  EXPECT_EQ(slowest[2].request_id, "c");
  EXPECT_EQ(log.recorded(), 5);
}

TEST(SlowLogTest, FindResolvesRecentAndSlowEntries) {
  SlowLog log(/*capacity=*/1, /*recent_capacity=*/2);
  log.Record(Entry("slow", 1'000));
  log.Record(Entry("fast1", 1));
  log.Record(Entry("fast2", 2));
  // "slow" aged out of the 2-deep recent ring but survives in the
  // slowest set; the fast ones resolve from the ring only.
  EXPECT_TRUE(log.Find("slow").has_value());
  EXPECT_TRUE(log.Find("fast1").has_value());
  EXPECT_TRUE(log.Find("fast2").has_value());
  EXPECT_FALSE(log.Find("never-seen").has_value());
  log.Record(Entry("fast3", 3));
  EXPECT_FALSE(log.Find("fast1").has_value());  // Ring evicted it.
}

TEST(SlowLogTest, FindPrefersTheNewestRecentEntry) {
  SlowLog log(/*capacity=*/4, /*recent_capacity=*/4);
  SlowLogEntry first = Entry("dup", 10);
  first.op = "whatif";
  log.Record(first);
  SlowLogEntry second = Entry("dup", 20);
  second.op = "recommend";
  log.Record(second);
  const auto found = log.Find("dup");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->op, "recommend");
  EXPECT_EQ(found->duration_us, 20);
}

TEST(SlowLogTest, ZeroCapacityDisablesTheSlowestSet) {
  SlowLog log(/*capacity=*/0, /*recent_capacity=*/2);
  log.Record(Entry("a", 100));
  EXPECT_TRUE(log.Slowest().empty());
  EXPECT_TRUE(log.Find("a").has_value());  // Ring still works.
  SlowLog off(/*capacity=*/0, /*recent_capacity=*/0);
  off.Record(Entry("b", 100));
  EXPECT_EQ(off.recorded(), 0);
  EXPECT_FALSE(off.Find("b").has_value());
}

TEST(SlowLogTest, ToJsonCarriesEntriesAndSpans) {
  SlowLog log(/*capacity=*/2, /*recent_capacity=*/2);
  SlowLogEntry entry = Entry("json-1", 77);
  entry.wire_status = 3;
  entry.window_epoch = 9;
  entry.request_bytes = 11;
  entry.response_bytes = 22;
  Tracer::Event span;
  span.name = "request.solve";
  span.category = "server";
  span.duration_us = 70;
  entry.spans.push_back(span);
  log.Record(entry);
  const std::string json = log.ToJson();
  EXPECT_NE(json.find("\"capacity\":2"), std::string::npos);
  EXPECT_NE(json.find("\"recorded\":1"), std::string::npos);
  EXPECT_NE(json.find("\"request_id\":\"json-1\""), std::string::npos);
  EXPECT_NE(json.find("\"wire_status\":3"), std::string::npos);
  EXPECT_NE(json.find("\"window_epoch\":9"), std::string::npos);
  EXPECT_NE(json.find("\"request.solve\""), std::string::npos);
  const std::string entry_json = log.Find("json-1")->ToJson();
  EXPECT_NE(entry_json.find("\"duration_us\":77"), std::string::npos);
  EXPECT_NE(entry_json.find("\"spans\":["), std::string::npos);
}

TEST(SlowLogTest, ManyThreadsRecordingKeepInvariantsUnderContention) {
  // Heavier than ConcurrentRecordsStayBounded below: more threads than
  // cores hammering Record() while the invariants are checked — the
  // slowest set stays sorted and capped, the recent ring never
  // overflows its capacity, and no record is lost. Runs under the TSan
  // preset (the Recorder|Journal|Replay|SlowLog filter).
  SlowLog log(/*capacity=*/16, /*recent_capacity=*/32);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 400;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.Record(Entry("c" + std::to_string(t) + "-" + std::to_string(i),
                         (i * 7919 + t) % 10'000));
        if (i % 64 == 0) {
          // Concurrent readers race the writers on purpose.
          (void)log.Slowest();
          (void)log.Find("c0-0");
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(log.recorded(), kThreads * kPerThread);
  EXPECT_EQ(log.recent_capacity(), 32u);
  EXPECT_LE(log.recent_size(), log.recent_capacity());
  const std::vector<SlowLogEntry> slowest = log.Slowest();
  ASSERT_LE(slowest.size(), 16u);
  ASSERT_EQ(slowest.size(), 16u);  // 3200 records easily fill 16 slots.
  for (size_t i = 1; i < slowest.size(); ++i) {
    EXPECT_GE(slowest[i - 1].duration_us, slowest[i].duration_us);
  }
}

TEST(SlowLogTest, ConcurrentRecordsStayBounded) {
  SlowLog log(/*capacity=*/8, /*recent_capacity=*/16);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < 500; ++i) {
        log.Record(Entry("t" + std::to_string(t) + "-" + std::to_string(i),
                         (t * 500 + i) % 97));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(log.recorded(), 4 * 500);
  const std::vector<SlowLogEntry> slowest = log.Slowest();
  ASSERT_EQ(slowest.size(), 8u);
  for (size_t i = 1; i < slowest.size(); ++i) {
    EXPECT_GE(slowest[i - 1].duration_us, slowest[i].duration_us);
  }
  // Everything the slowest set kept beats the global floor it implies.
  EXPECT_EQ(slowest.front().duration_us, 96);
}

}  // namespace
}  // namespace cdpd
