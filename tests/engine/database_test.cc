#include "engine/database.h"

#include <gtest/gtest.h>

namespace cdpd {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = Database::Create(MakePaperSchema(), 10'000, 500, /*seed=*/1)
              .value();
  }
  std::unique_ptr<Database> db_;
};

TEST_F(DatabaseTest, CreateValidatesArguments) {
  EXPECT_FALSE(Database::Create(MakePaperSchema(), -1, 500, 1).ok());
  EXPECT_FALSE(Database::Create(MakePaperSchema(), 10, 0, 1).ok());
}

TEST_F(DatabaseTest, CreatePopulatesTable) {
  EXPECT_EQ(db_->table().num_rows(), 10'000);
  EXPECT_EQ(db_->schema().table_name(), "t");
  EXPECT_TRUE(db_->current_configuration().empty());
}

TEST_F(DatabaseTest, SameSeedSameData) {
  auto db2 = Database::Create(MakePaperSchema(), 10'000, 500, 1).value();
  for (RowId row = 0; row < 100; ++row) {
    EXPECT_EQ(db_->table().GetValue(row, 2), db2->table().GetValue(row, 2));
  }
}

TEST_F(DatabaseTest, ApplyConfigurationCreatesAndDrops) {
  const Configuration target({IndexDef({0}), IndexDef({2, 3})});
  AccessStats stats;
  ASSERT_TRUE(db_->ApplyConfiguration(target, &stats).ok());
  EXPECT_EQ(db_->current_configuration(), target);
  EXPECT_GT(stats.sequential_pages, 0);  // Two heap scans for the builds.

  const Configuration next({IndexDef({2, 3})});
  AccessStats stats2;
  ASSERT_TRUE(db_->ApplyConfiguration(next, &stats2).ok());
  EXPECT_EQ(db_->current_configuration(), next);
  // Only a drop: no heap scan.
  EXPECT_EQ(stats2.sequential_pages, 0);
  EXPECT_GT(stats2.written_pages, 0);
}

TEST_F(DatabaseTest, ApplyConfigurationIsIdempotent) {
  const Configuration target({IndexDef({1})});
  AccessStats stats;
  ASSERT_TRUE(db_->ApplyConfiguration(target, &stats).ok());
  AccessStats stats2;
  ASSERT_TRUE(db_->ApplyConfiguration(target, &stats2).ok());
  EXPECT_EQ(stats2, AccessStats{});
}

TEST_F(DatabaseTest, ExecuteSqlSelect) {
  AccessStats stats;
  auto result = db_->ExecuteSql("SELECT a FROM t WHERE a = 42", &stats);
  ASSERT_TRUE(result.ok()) << result.status();
  for (Value v : result->values) EXPECT_EQ(v, 42);
}

TEST_F(DatabaseTest, ExecuteSqlDdlChangesConfiguration) {
  AccessStats stats;
  ASSERT_TRUE(db_->ExecuteSql("CREATE INDEX ON t (a, b)", &stats).ok());
  EXPECT_TRUE(db_->current_configuration().Contains(IndexDef({0, 1})));
  ASSERT_TRUE(db_->ExecuteSql("DROP INDEX ON t (a, b)", &stats).ok());
  EXPECT_TRUE(db_->current_configuration().empty());
}

TEST_F(DatabaseTest, ExecuteSqlReportsParseErrors) {
  AccessStats stats;
  EXPECT_EQ(db_->ExecuteSql("SELEKT a", &stats).status().code(),
            StatusCode::kParseError);
}

TEST_F(DatabaseTest, ExecuteSqlReportsBindErrors) {
  AccessStats stats;
  EXPECT_FALSE(db_->ExecuteSql("SELECT zz FROM t WHERE a = 1", &stats).ok());
}

TEST_F(DatabaseTest, RunWorkloadAggregatesStats) {
  std::vector<BoundStatement> batch;
  for (int i = 0; i < 5; ++i) {
    batch.push_back(BoundStatement::SelectPoint(0, 0, i));
  }
  auto run = db_->RunWorkload(batch);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->statements, 5);
  // Five full scans without an index.
  EXPECT_EQ(run->stats.sequential_pages, 5 * db_->table().heap_pages());
  EXPECT_GE(run->wall_seconds, 0.0);
}

TEST_F(DatabaseTest, BulkLoadAccessRequiresIndexFreeTable) {
  auto table = db_->GetTableForBulkLoad();
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)->SetValue(0, 0, 42).ok());
  EXPECT_EQ(db_->table().GetValue(0, 0), 42);

  AccessStats stats;
  ASSERT_TRUE(
      db_->ApplyConfiguration(Configuration({IndexDef({0})}), &stats).ok());
  EXPECT_EQ(db_->GetTableForBulkLoad().status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(db_->ApplyConfiguration(Configuration::Empty(), &stats).ok());
  EXPECT_TRUE(db_->GetTableForBulkLoad().ok());
}

TEST_F(DatabaseTest, CostModelMatchesTable) {
  EXPECT_EQ(db_->cost_model().num_rows(), db_->table().num_rows());
  EXPECT_EQ(db_->cost_model().HeapPagesCount(), db_->table().heap_pages());
}

}  // namespace
}  // namespace cdpd
