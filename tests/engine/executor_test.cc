#include "engine/executor.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "engine/database.h"

namespace cdpd {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = Database::Create(MakePaperSchema(), 20'000, 500, /*seed=*/11)
              .value();
  }

  /// Reference evaluation by direct column scan.
  std::vector<Value> ReferenceSelect(ColumnId select_col, ColumnId where_col,
                                     Value v) const {
    std::vector<Value> out;
    const Table& table = db_->table();
    for (RowId row = 0; row < table.num_rows(); ++row) {
      if (table.GetValue(row, where_col) == v) {
        out.push_back(table.GetValue(row, select_col));
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  std::vector<Value> RunSelect(ColumnId select_col, ColumnId where_col,
                               Value v, AccessPathKind expected_kind) {
    AccessStats stats;
    auto result = db_->Execute(
        BoundStatement::SelectPoint(select_col, where_col, v), &stats);
    EXPECT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->plan.kind, expected_kind);
    std::vector<Value> values = result->values;
    std::sort(values.begin(), values.end());
    return values;
  }

  std::unique_ptr<Database> db_;
};

TEST_F(ExecutorTest, TableScanWithoutIndexes) {
  AccessStats stats;
  auto result =
      db_->Execute(BoundStatement::SelectPoint(0, 0, 123), &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan.kind, AccessPathKind::kTableScan);
  EXPECT_EQ(stats.sequential_pages, db_->table().heap_pages());
  EXPECT_EQ(stats.rows_examined, db_->table().num_rows());
}

TEST_F(ExecutorTest, AllAccessPathsReturnIdenticalResults) {
  const Value v = 77;
  const std::vector<Value> reference = ReferenceSelect(0, 0, v);
  ASSERT_FALSE(reference.empty()) << "pick a value with matches";

  // No index: table scan.
  EXPECT_EQ(RunSelect(0, 0, v, AccessPathKind::kTableScan), reference);

  // I(a): covering seek (select col == where col == key col).
  AccessStats stats;
  ASSERT_TRUE(db_->ApplyConfiguration(Configuration({IndexDef({0})}), &stats)
                  .ok());
  EXPECT_EQ(RunSelect(0, 0, v, AccessPathKind::kIndexSeek), reference);

  // I(a,b): still a seek for predicate on a.
  ASSERT_TRUE(
      db_->ApplyConfiguration(Configuration({IndexDef({0, 1})}), &stats)
          .ok());
  EXPECT_EQ(RunSelect(0, 0, v, AccessPathKind::kIndexSeek), reference);

  // I(a,b) answering a predicate on b: covering leaf scan.
  const std::vector<Value> reference_b = ReferenceSelect(1, 1, v);
  EXPECT_EQ(RunSelect(1, 1, v, AccessPathKind::kCoveringScan), reference_b);
}

TEST_F(ExecutorTest, SeekWithFetchWhenSelectNotCovered) {
  // A sparse domain keeps the per-match heap fetches cheaper than a
  // scan (at the fixture's 40-match selectivity a table scan would
  // rightly win, so use a dedicated database here).
  auto db =
      Database::Create(MakePaperSchema(), 20'000, 500'000, /*seed=*/21)
          .value();
  AccessStats stats;
  ASSERT_TRUE(
      db->ApplyConfiguration(Configuration({IndexDef({0})}), &stats).ok());
  // Predicate on a (indexed), but select d: entries don't carry d.
  const Value v = db->table().GetValue(7, 0);  // Guaranteed one match.
  std::vector<Value> reference;
  for (RowId row = 0; row < db->table().num_rows(); ++row) {
    if (db->table().GetValue(row, 0) == v) {
      reference.push_back(db->table().GetValue(row, 3));
    }
  }
  std::sort(reference.begin(), reference.end());
  AccessStats query_stats;
  auto result =
      db->Execute(BoundStatement::SelectPoint(3, 0, v), &query_stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan.kind, AccessPathKind::kIndexSeekWithFetch);
  std::vector<Value> got = result->values;
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, reference);
  // Each match paid a random heap fetch.
  EXPECT_GE(query_stats.random_pages,
            static_cast<int64_t>(got.size()));
}

TEST_F(ExecutorTest, SeekChargesDescentNotScan) {
  AccessStats apply_stats;
  ASSERT_TRUE(
      db_->ApplyConfiguration(Configuration({IndexDef({0})}), &apply_stats)
          .ok());
  AccessStats stats;
  auto result = db_->Execute(BoundStatement::SelectPoint(0, 0, 5), &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(stats.random_pages + stats.sequential_pages, 10);
}

TEST_F(ExecutorTest, UpdateRewritesHeapAndMaintainsIndexes) {
  AccessStats stats;
  ASSERT_TRUE(
      db_->ApplyConfiguration(Configuration({IndexDef({1})}), &stats).ok());

  // Find some row's current b-value via the index.
  const Value old_b = db_->table().GetValue(100, 1);
  auto count = [&](Value v) {
    AccessStats s;
    auto r = db_->Execute(BoundStatement::SelectPoint(1, 1, v), &s);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r->plan.kind, AccessPathKind::kIndexSeek);
    return r->rows_affected;
  };
  const int64_t before_old = count(old_b);
  const int64_t before_new = count(499);

  AccessStats update_stats;
  auto update = db_->Execute(
      BoundStatement::UpdatePoint(/*set_column=*/1, /*set_value=*/499,
                                  /*where_column=*/1, /*where_value=*/old_b),
      &update_stats);
  ASSERT_TRUE(update.ok());
  EXPECT_EQ(update->rows_affected, before_old);
  EXPECT_GT(update_stats.written_pages, 0);

  // The index reflects the moved entries.
  EXPECT_EQ(count(old_b), 0);
  EXPECT_EQ(count(499), before_new + before_old);
}

TEST_F(ExecutorTest, UpdateLeavesUnrelatedIndexesAlone) {
  AccessStats stats;
  ASSERT_TRUE(
      db_->ApplyConfiguration(Configuration({IndexDef({0})}), &stats).ok());
  const auto* tree = db_->catalog().GetIndex("t", IndexDef({0})).value();
  const int64_t entries_before = tree->num_entries();

  AccessStats update_stats;
  // Updating column d does not touch I(a).
  auto update = db_->Execute(BoundStatement::UpdatePoint(3, 1, 3, 2),
                             &update_stats);
  ASSERT_TRUE(update.ok());
  EXPECT_EQ(tree->num_entries(), entries_before);
}

TEST_F(ExecutorTest, InsertAppendsRowAndIndexEntries) {
  AccessStats stats;
  ASSERT_TRUE(
      db_->ApplyConfiguration(Configuration({IndexDef({0, 1})}), &stats)
          .ok());
  const int64_t rows_before = db_->table().num_rows();
  const auto* tree = db_->catalog().GetIndex("t", IndexDef({0, 1})).value();
  const int64_t entries_before = tree->num_entries();

  AccessStats insert_stats;
  auto insert = db_->Execute(BoundStatement::Insert({600, 601, 602, 603}),
                             &insert_stats);
  ASSERT_TRUE(insert.ok());
  EXPECT_EQ(db_->table().num_rows(), rows_before + 1);
  EXPECT_EQ(tree->num_entries(), entries_before + 1);

  // The new row is visible through the index (value 600 is outside the
  // populated domain [0, 500)).
  AccessStats select_stats;
  auto select =
      db_->Execute(BoundStatement::SelectPoint(0, 0, 600), &select_stats);
  ASSERT_TRUE(select.ok());
  EXPECT_EQ(select->rows_affected, 1);
}

TEST_F(ExecutorTest, ChoosesCheapestIndexAmongSeveral) {
  AccessStats stats;
  ASSERT_TRUE(db_->ApplyConfiguration(
                    Configuration({IndexDef({0}), IndexDef({0, 1})}), &stats)
                  .ok());
  AccessStats s;
  auto result = db_->Execute(BoundStatement::SelectPoint(0, 0, 9), &s);
  ASSERT_TRUE(result.ok());
  // Both indexes can seek; the narrower I(a) is at least as cheap.
  EXPECT_EQ(result->plan.kind, AccessPathKind::kIndexSeek);
  ASSERT_TRUE(result->plan.index.has_value());
  EXPECT_EQ(*result->plan.index, IndexDef({0}));
}

}  // namespace
}  // namespace cdpd
