#include "workload/query_mix.h"

#include <gtest/gtest.h>

namespace cdpd {
namespace {

TEST(QueryMixTest, PaperMixesMatchTable1) {
  const std::vector<QueryMix> mixes = MakePaperQueryMixes();
  ASSERT_EQ(mixes.size(), 4u);
  EXPECT_EQ(mixes[0].name, "A");
  EXPECT_EQ(mixes[0].column_weights, (std::vector<double>{0.55, 0.25, 0.10, 0.10}));
  EXPECT_EQ(mixes[1].name, "B");
  EXPECT_EQ(mixes[1].column_weights, (std::vector<double>{0.25, 0.55, 0.10, 0.10}));
  EXPECT_EQ(mixes[2].name, "C");
  EXPECT_EQ(mixes[2].column_weights, (std::vector<double>{0.10, 0.10, 0.55, 0.25}));
  EXPECT_EQ(mixes[3].name, "D");
  EXPECT_EQ(mixes[3].column_weights, (std::vector<double>{0.10, 0.10, 0.25, 0.55}));
}

TEST(QueryMixTest, WeightsOfEveryMixSumToOne) {
  for (const QueryMix& mix : MakePaperQueryMixes()) {
    double sum = 0;
    for (double w : mix.column_weights) sum += w;
    EXPECT_NEAR(sum, 1.0, 1e-12) << mix.name;
  }
}

TEST(QueryMixTest, FindMixByNameIsCaseInsensitive) {
  const std::vector<QueryMix> mixes = MakePaperQueryMixes();
  EXPECT_EQ(FindMixByName(mixes, "A"), 0);
  EXPECT_EQ(FindMixByName(mixes, "d"), 3);
  EXPECT_EQ(FindMixByName(mixes, "Z"), -1);
}

}  // namespace
}  // namespace cdpd
