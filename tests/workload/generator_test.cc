#include "workload/generator.h"

#include <gtest/gtest.h>

namespace cdpd {
namespace {

class GeneratorTest : public ::testing::Test {
 protected:
  Schema schema_ = MakePaperSchema();
  std::vector<QueryMix> mixes_ = MakePaperQueryMixes();
};

TEST_F(GeneratorTest, QueriesSelectTheirPredicateColumn) {
  WorkloadGenerator gen(schema_, 500'000, 1);
  for (int i = 0; i < 100; ++i) {
    const BoundStatement q = gen.GenerateQuery(mixes_[0]);
    EXPECT_EQ(q.type, StatementType::kSelectPoint);
    EXPECT_EQ(q.select_column, q.where_column);  // The paper's template.
    EXPECT_GE(q.where_value, 0);
    EXPECT_LT(q.where_value, 500'000);
  }
}

TEST_F(GeneratorTest, MixFrequenciesAreRespected) {
  WorkloadGenerator gen(schema_, 500'000, 2);
  const int n = 40'000;
  std::vector<int> counts(4, 0);
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<size_t>(gen.GenerateQuery(mixes_[0]).where_column)];
  }
  EXPECT_NEAR(counts[0] / double(n), 0.55, 0.02);
  EXPECT_NEAR(counts[1] / double(n), 0.25, 0.02);
  EXPECT_NEAR(counts[2] / double(n), 0.10, 0.02);
  EXPECT_NEAR(counts[3] / double(n), 0.10, 0.02);
}

TEST_F(GeneratorTest, DeterministicForSameSeed) {
  WorkloadGenerator g1(schema_, 1000, 7);
  WorkloadGenerator g2(schema_, 1000, 7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(g1.GenerateQuery(mixes_[1]), g2.GenerateQuery(mixes_[1]));
  }
}

TEST_F(GeneratorTest, GenerateFromMixProducesCount) {
  WorkloadGenerator gen(schema_, 1000, 3);
  EXPECT_EQ(gen.GenerateFromMix(mixes_[2], 123).size(), 123u);
}

TEST_F(GeneratorTest, GenerateBlockedShapesWorkload) {
  WorkloadGenerator gen(schema_, 1000, 4);
  auto workload = gen.GenerateBlocked(mixes_, {0, 1, 0}, 50);
  ASSERT_TRUE(workload.ok());
  EXPECT_EQ(workload->size(), 150u);
  EXPECT_EQ(workload->block_size, 50u);
  EXPECT_EQ(workload->block_mix_names,
            (std::vector<std::string>{"A", "B", "A"}));
}

TEST_F(GeneratorTest, GenerateBlockedValidatesInput) {
  WorkloadGenerator gen(schema_, 1000, 5);
  EXPECT_FALSE(gen.GenerateBlocked(mixes_, {0}, 0).ok());
  EXPECT_FALSE(gen.GenerateBlocked(mixes_, {9}, 10).ok());
  QueryMix bad{"X", {0.5, 0.5}};  // Wrong arity.
  EXPECT_FALSE(gen.GenerateBlocked({bad}, {0}, 10).ok());
  DmlMixOptions dml;
  dml.update_fraction = 0.9;
  dml.insert_fraction = 0.2;  // Sums above 1.
  EXPECT_FALSE(gen.GenerateBlocked(mixes_, {0}, 10, dml).ok());
}

TEST_F(GeneratorTest, DmlMixProducesUpdatesAndInserts) {
  WorkloadGenerator gen(schema_, 1000, 6);
  DmlMixOptions dml;
  dml.update_fraction = 0.3;
  dml.insert_fraction = 0.1;
  auto workload = gen.GenerateBlocked(mixes_, {0, 0, 0, 0}, 500, dml);
  ASSERT_TRUE(workload.ok());
  int updates = 0;
  int inserts = 0;
  int selects = 0;
  for (const BoundStatement& s : workload->statements) {
    switch (s.type) {
      case StatementType::kUpdatePoint:
        ++updates;
        EXPECT_EQ(s.insert_values.size(), 0u);
        break;
      case StatementType::kInsert:
        ++inserts;
        EXPECT_EQ(s.insert_values.size(), 4u);
        break;
      case StatementType::kSelectPoint:
      case StatementType::kSelectRange:
        ++selects;
        break;
    }
  }
  const double n = 2000;
  EXPECT_NEAR(updates / n, 0.3, 0.05);
  EXPECT_NEAR(inserts / n, 0.1, 0.04);
  EXPECT_NEAR(selects / n, 0.6, 0.05);
}

}  // namespace
}  // namespace cdpd
