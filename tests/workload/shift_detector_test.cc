#include "workload/shift_detector.h"

#include <gtest/gtest.h>

#include "workload/standard_workloads.h"

namespace cdpd {
namespace {

class ShiftDetectorTest : public ::testing::Test {
 protected:
  Schema schema_ = MakePaperSchema();

  Workload MakeW(const std::string& name, size_t block, uint64_t seed) {
    WorkloadGenerator gen(schema_, 500'000, seed);
    return MakeScaledPaperWorkload(name, block, &gen).value();
  }
};

TEST_F(ShiftDetectorTest, FindsTheTwoMajorShiftsOfW1) {
  const Workload w1 = MakeW("W1", 200, 41);
  ShiftDetectionOptions options;
  options.block_size = 200;
  options.window_blocks = 4;
  const ShiftReport report =
      DetectMajorShifts(schema_, w1.statements, options);
  ASSERT_EQ(report.shifts.size(), 2u) << report.ToString();
  EXPECT_EQ(report.suggested_k, 2);
  // Shifts at blocks 10 and 20 (phase boundaries), +-1 block.
  EXPECT_NEAR(static_cast<double>(report.shifts[0].block_index), 10.0, 1.0);
  EXPECT_NEAR(static_cast<double>(report.shifts[1].block_index), 20.0, 1.0);
  EXPECT_GT(report.shifts[0].distance, 0.4);
}

TEST_F(ShiftDetectorTest, MinorShiftsAreFilteredByWindowAveraging) {
  // W2 alternates every block: with a window of 4 the averages on both
  // sides of any within-phase boundary coincide.
  const Workload w2 = MakeW("W2", 200, 42);
  ShiftDetectionOptions options;
  options.block_size = 200;
  options.window_blocks = 4;
  const ShiftReport report =
      DetectMajorShifts(schema_, w2.statements, options);
  EXPECT_EQ(report.shifts.size(), 2u) << report.ToString();
}

TEST_F(ShiftDetectorTest, StableWorkloadHasNoShifts) {
  WorkloadGenerator gen(schema_, 500'000, 43);
  const std::vector<QueryMix> mixes = MakePaperQueryMixes();
  Workload stable =
      gen.GenerateBlocked(mixes, std::vector<int>(20, 0), 200).value();
  ShiftDetectionOptions options;
  options.block_size = 200;
  const ShiftReport report =
      DetectMajorShifts(schema_, stable.statements, options);
  EXPECT_TRUE(report.shifts.empty());
  EXPECT_EQ(report.suggested_k, 0);
}

TEST_F(ShiftDetectorTest, TooShortTraceYieldsNothing) {
  WorkloadGenerator gen(schema_, 500'000, 44);
  Workload tiny =
      gen.GenerateBlocked(MakePaperQueryMixes(), {0, 1, 2}, 50).value();
  ShiftDetectionOptions options;
  options.block_size = 50;
  options.window_blocks = 4;
  EXPECT_TRUE(
      DetectMajorShifts(schema_, tiny.statements, options).shifts.empty());
}

TEST_F(ShiftDetectorTest, DegenerateOptionsAreSafe) {
  const Workload w1 = MakeW("W1", 100, 45);
  ShiftDetectionOptions options;
  options.block_size = 0;
  EXPECT_TRUE(
      DetectMajorShifts(schema_, w1.statements, options).shifts.empty());
  options.block_size = 100;
  options.window_blocks = 0;
  EXPECT_TRUE(
      DetectMajorShifts(schema_, w1.statements, options).shifts.empty());
}

TEST_F(ShiftDetectorTest, ReportToStringListsShifts) {
  const Workload w1 = MakeW("W1", 200, 46);
  ShiftDetectionOptions options;
  options.block_size = 200;
  const ShiftReport report =
      DetectMajorShifts(schema_, w1.statements, options);
  EXPECT_NE(report.ToString().find("suggested k = 2"), std::string::npos);
}

TEST_F(ShiftDetectorTest, SuggestedKMatchesPaperChoiceForW1) {
  // The paper chose k = 2 for W1 "to match the number of major
  // shifts"; the detector recovers that from the trace alone.
  const Workload w1 = MakeW("W1", 500, 47);
  ShiftDetectionOptions options;
  options.block_size = 500;
  const ShiftReport report =
      DetectMajorShifts(schema_, w1.statements, options);
  EXPECT_EQ(report.suggested_k, 2);
}

}  // namespace
}  // namespace cdpd
