#include "workload/adaptive_segmenter.h"

#include <gtest/gtest.h>

#include "core/advisor.h"
#include "workload/standard_workloads.h"

namespace cdpd {
namespace {

class AdaptiveSegmenterTest : public ::testing::Test {
 protected:
  Schema schema_ = MakePaperSchema();

  Workload MakeW1(size_t block, uint64_t seed) {
    WorkloadGenerator gen(schema_, 500'000, seed);
    return MakeScaledPaperWorkload("W1", block, &gen).value();
  }
};

TEST_F(AdaptiveSegmenterTest, MergesHomogeneousRunsOfW1) {
  const Workload w1 = MakeW1(200, 81);
  AdaptiveSegmentOptions options;
  options.base_block_size = 200;
  const std::vector<Segment> segments =
      SegmentAdaptive(schema_, w1.statements, options);
  // W1 at this resolution has 15 maximal same-mix runs (AA BB AA BB AA
  // per phase): the segmenter should find roughly that many stages,
  // far fewer than the 30 fixed blocks.
  EXPECT_GE(segments.size(), 13u);
  EXPECT_LE(segments.size(), 18u);
  // Segments tile the workload.
  size_t covered = 0;
  size_t expected_begin = 0;
  for (const Segment& segment : segments) {
    EXPECT_EQ(segment.begin, expected_begin);
    covered += segment.size();
    expected_begin = segment.end;
  }
  EXPECT_EQ(covered, w1.size());
}

TEST_F(AdaptiveSegmenterTest, StableWorkloadCollapsesToOneSegment) {
  WorkloadGenerator gen(schema_, 500'000, 82);
  Workload stable =
      gen.GenerateBlocked(MakePaperQueryMixes(), std::vector<int>(20, 2),
                          200)
          .value();
  AdaptiveSegmentOptions options;
  options.base_block_size = 200;
  const std::vector<Segment> segments =
      SegmentAdaptive(schema_, stable.statements, options);
  EXPECT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].end, stable.size());
}

TEST_F(AdaptiveSegmenterTest, ZeroThresholdKeepsEveryBlock) {
  const Workload w1 = MakeW1(200, 83);
  AdaptiveSegmentOptions options;
  options.base_block_size = 200;
  options.merge_threshold = 0.0;  // Sampling noise exceeds 0.
  const std::vector<Segment> segments =
      SegmentAdaptive(schema_, w1.statements, options);
  EXPECT_EQ(segments.size(), 30u);
}

TEST_F(AdaptiveSegmenterTest, MaxSegmentBlocksCapsMerging) {
  WorkloadGenerator gen(schema_, 500'000, 84);
  Workload stable =
      gen.GenerateBlocked(MakePaperQueryMixes(), std::vector<int>(20, 0),
                          100)
          .value();
  AdaptiveSegmentOptions options;
  options.base_block_size = 100;
  options.max_segment_blocks = 5;
  const std::vector<Segment> segments =
      SegmentAdaptive(schema_, stable.statements, options);
  EXPECT_EQ(segments.size(), 4u);
  for (const Segment& segment : segments) {
    EXPECT_LE(segment.size(), 500u);
  }
}

TEST_F(AdaptiveSegmenterTest, DegenerateInputs) {
  EXPECT_TRUE(SegmentAdaptive(schema_, {}, {}).empty());
  const Workload w1 = MakeW1(100, 85);
  AdaptiveSegmentOptions options;
  options.base_block_size = 0;
  EXPECT_TRUE(SegmentAdaptive(schema_, w1.statements, options).empty());
}

TEST_F(AdaptiveSegmenterTest, AdvisorWithAdaptiveStagesMatchesFixedQuality) {
  const Workload w1 = MakeW1(200, 86);
  CostModel model(schema_, 200'000, 500'000);
  Advisor advisor(&model);

  AdvisorOptions fixed;
  fixed.block_size = 200;
  fixed.k = 2;
  fixed.candidate_indexes = MakePaperCandidateIndexes(schema_);
  auto fixed_rec = advisor.Recommend(w1, fixed);
  ASSERT_TRUE(fixed_rec.ok());

  AdvisorOptions adaptive = fixed;
  adaptive.segmentation = SegmentationMode::kAdaptive;
  auto adaptive_rec = advisor.Recommend(w1, adaptive);
  ASSERT_TRUE(adaptive_rec.ok()) << adaptive_rec.status();

  // Fewer stages, same design quality (the paper's phase pattern).
  EXPECT_LT(adaptive_rec->segments.size(), fixed_rec->segments.size());
  EXPECT_NEAR(adaptive_rec->schedule.total_cost,
              fixed_rec->schedule.total_cost,
              0.01 * fixed_rec->schedule.total_cost);
  EXPECT_LE(adaptive_rec->changes, 2);
}

}  // namespace
}  // namespace cdpd
