#include "workload/workload.h"

#include <gtest/gtest.h>

namespace cdpd {
namespace {

TEST(SegmentTest, SizeIsEndMinusBegin) {
  EXPECT_EQ((Segment{10, 25}).size(), 15u);
  EXPECT_EQ((Segment{3, 3}).size(), 0u);
}

TEST(SegmentFixedTest, ExactMultiple) {
  const std::vector<Segment> segments = SegmentFixed(100, 25);
  ASSERT_EQ(segments.size(), 4u);
  EXPECT_EQ(segments[0], (Segment{0, 25}));
  EXPECT_EQ(segments[3], (Segment{75, 100}));
}

TEST(SegmentFixedTest, LastSegmentMayBeShort) {
  const std::vector<Segment> segments = SegmentFixed(10, 4);
  ASSERT_EQ(segments.size(), 3u);
  EXPECT_EQ(segments[2], (Segment{8, 10}));
}

TEST(SegmentFixedTest, EmptyInput) {
  EXPECT_TRUE(SegmentFixed(0, 10).empty());
}

TEST(SegmentFixedTest, BlockSizeOfOneIsPerStatement) {
  const std::vector<Segment> segments = SegmentFixed(5, 1);
  ASSERT_EQ(segments.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(segments[i], (Segment{i, i + 1}));
  }
}

TEST(SegmentFixedTest, SegmentsTileTheRange) {
  const std::vector<Segment> segments = SegmentFixed(1234, 77);
  size_t covered = 0;
  size_t expected_begin = 0;
  for (const Segment& s : segments) {
    EXPECT_EQ(s.begin, expected_begin);
    EXPECT_GT(s.end, s.begin);
    covered += s.size();
    expected_begin = s.end;
  }
  EXPECT_EQ(covered, 1234u);
}

TEST(BoundStatementTest, FactoriesSetFields) {
  const BoundStatement s = BoundStatement::SelectPoint(1, 2, 33);
  EXPECT_EQ(s.type, StatementType::kSelectPoint);
  EXPECT_EQ(s.select_column, 1);
  EXPECT_EQ(s.where_column, 2);
  EXPECT_EQ(s.where_value, 33);

  const BoundStatement u = BoundStatement::UpdatePoint(0, 5, 3, 7);
  EXPECT_EQ(u.type, StatementType::kUpdatePoint);
  EXPECT_EQ(u.set_column, 0);
  EXPECT_EQ(u.set_value, 5);

  const BoundStatement i = BoundStatement::Insert({1, 2, 3, 4});
  EXPECT_EQ(i.type, StatementType::kInsert);
  EXPECT_EQ(i.insert_values.size(), 4u);
}

TEST(BoundStatementTest, ToStringRendersSql) {
  const Schema schema = MakePaperSchema();
  EXPECT_EQ(BoundStatement::SelectPoint(0, 0, 5).ToString(schema),
            "SELECT a FROM t WHERE a = 5");
  EXPECT_EQ(BoundStatement::UpdatePoint(1, 2, 3, 4).ToString(schema),
            "UPDATE t SET b = 2 WHERE d = 4");
  EXPECT_EQ(BoundStatement::Insert({1, 2, 3, 4}).ToString(schema),
            "INSERT INTO t VALUES (1, 2, 3, 4)");
}

}  // namespace
}  // namespace cdpd
