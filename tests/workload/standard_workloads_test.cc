#include "workload/standard_workloads.h"

#include <gtest/gtest.h>

namespace cdpd {
namespace {

TEST(StandardWorkloadsTest, W1BlockLettersMatchTable2) {
  const std::vector<std::string> w1 = PaperBlockMixLetters("W1");
  ASSERT_EQ(w1.size(), 30u);
  // Phase 1: AABB alternating every 1000 queries (2 blocks of 500).
  const std::vector<std::string> phase1(w1.begin(), w1.begin() + 10);
  EXPECT_EQ(phase1, (std::vector<std::string>{"A", "A", "B", "B", "A", "A",
                                              "B", "B", "A", "A"}));
  // Phase 2: CCDD...
  const std::vector<std::string> phase2(w1.begin() + 10, w1.begin() + 20);
  EXPECT_EQ(phase2, (std::vector<std::string>{"C", "C", "D", "D", "C", "C",
                                              "D", "D", "C", "C"}));
  // Phase 3 repeats phase 1.
  EXPECT_TRUE(std::equal(w1.begin(), w1.begin() + 10, w1.begin() + 20));
}

TEST(StandardWorkloadsTest, W2ShiftsEveryBlock) {
  const std::vector<std::string> w2 = PaperBlockMixLetters("W2");
  ASSERT_EQ(w2.size(), 30u);
  const std::vector<std::string> phase1(w2.begin(), w2.begin() + 10);
  EXPECT_EQ(phase1, (std::vector<std::string>{"A", "B", "A", "B", "A", "B",
                                              "A", "B", "A", "B"}));
  EXPECT_EQ(w2[10], "C");
  EXPECT_EQ(w2[11], "D");
}

TEST(StandardWorkloadsTest, W3IsOutOfPhaseWithW1) {
  const std::vector<std::string> w1 = PaperBlockMixLetters("W1");
  const std::vector<std::string> w3 = PaperBlockMixLetters("W3");
  ASSERT_EQ(w3.size(), 30u);
  for (size_t i = 0; i < 30; ++i) {
    // W3 swaps A<->B and C<->D relative to W1.
    EXPECT_NE(w1[i], w3[i]) << "block " << i;
    const bool same_phase_family =
        ((w1[i] == "A" || w1[i] == "B") && (w3[i] == "A" || w3[i] == "B")) ||
        ((w1[i] == "C" || w1[i] == "D") && (w3[i] == "C" || w3[i] == "D"));
    EXPECT_TRUE(same_phase_family) << "block " << i;
  }
}

TEST(StandardWorkloadsTest, UnknownNameIsEmptyOrError) {
  EXPECT_TRUE(PaperBlockMixLetters("W9").empty());
  WorkloadGenerator gen(MakePaperSchema(), 1000, 1);
  EXPECT_FALSE(MakePaperWorkload("W9", &gen).ok());
}

TEST(StandardWorkloadsTest, PaperWorkloadHas15000Statements) {
  WorkloadGenerator gen(MakePaperSchema(), 500'000, 42);
  auto w1 = MakePaperWorkload("W1", &gen);
  ASSERT_TRUE(w1.ok());
  EXPECT_EQ(w1->size(), 15'000u);
  EXPECT_EQ(w1->block_size, kPaperBlockSize);
  EXPECT_EQ(w1->block_mix_names.size(), 30u);
}

TEST(StandardWorkloadsTest, ScaledWorkloadShrinksBlocks) {
  WorkloadGenerator gen(MakePaperSchema(), 1000, 42);
  auto w1 = MakeScaledPaperWorkload("W1", 20, &gen);
  ASSERT_TRUE(w1.ok());
  EXPECT_EQ(w1->size(), 600u);
  EXPECT_EQ(w1->block_mix_names, PaperBlockMixLetters("W1"));
}

TEST(StandardWorkloadsTest, BlockContentsFollowTheBlockMix) {
  WorkloadGenerator gen(MakePaperSchema(), 1000, 13);
  auto w1 = MakeScaledPaperWorkload("W1", 400, &gen);
  ASSERT_TRUE(w1.ok());
  // In an A-block, column a must clearly dominate (55% vs 25%).
  auto column_share = [&](size_t block, ColumnId col) {
    int hits = 0;
    for (size_t i = block * 400; i < (block + 1) * 400; ++i) {
      if (w1->statements[i].where_column == col) ++hits;
    }
    return hits / 400.0;
  };
  EXPECT_GT(column_share(0, 0), 0.45);   // Block 0 is mix A.
  EXPECT_GT(column_share(2, 1), 0.45);   // Block 2 is mix B.
  EXPECT_GT(column_share(10, 2), 0.45);  // Block 10 is mix C.
  EXPECT_GT(column_share(12, 3), 0.45);  // Block 12 is mix D.
}

}  // namespace
}  // namespace cdpd
