#include "workload/trace_io.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "workload/generator.h"
#include "workload/standard_workloads.h"

namespace cdpd {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  Schema schema_ = MakePaperSchema();
};

TEST_F(TraceIoTest, RoundTripsStatementsExactly) {
  WorkloadGenerator gen(schema_, 1000, 31);
  Workload original = MakeScaledPaperWorkload("W1", 10, &gen).value();
  const std::string text = WriteTrace(schema_, original);
  auto parsed = ReadTrace(schema_, text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->statements, original.statements);
  EXPECT_EQ(parsed->block_mix_names, original.block_mix_names);
  EXPECT_EQ(parsed->block_size, original.block_size);
}

TEST_F(TraceIoTest, RoundTripsAllStatementKinds) {
  Workload workload;
  workload.statements = {
      BoundStatement::SelectPoint(0, 1, 42),
      BoundStatement::UpdatePoint(2, -5, 3, 7),
      BoundStatement::Insert({1, 2, 3, 4}),
  };
  auto parsed = ReadTrace(schema_, WriteTrace(schema_, workload));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->statements, workload.statements);
}

TEST_F(TraceIoTest, IgnoresCommentsAndBlankLines) {
  auto parsed = ReadTrace(schema_,
                          "-- a comment\n\n"
                          "SELECT a FROM t WHERE a = 1;\n"
                          "   \n-- another\n"
                          "SELECT b FROM t WHERE b = 2;\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 2u);
  EXPECT_TRUE(parsed->block_mix_names.empty());
}

TEST_F(TraceIoTest, ReportsLineNumbersOnParseErrors) {
  const auto status =
      ReadTrace(schema_, "SELECT a FROM t WHERE a = 1;\nNOT SQL;\n")
          .status();
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_NE(status.message().find("line 2"), std::string::npos);
}

TEST_F(TraceIoTest, ReportsBindErrorsWithLineNumbers) {
  const auto status =
      ReadTrace(schema_, "SELECT zz FROM t WHERE a = 1;\n").status();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("line 1"), std::string::npos);
}

TEST_F(TraceIoTest, RejectsDdlInTraces) {
  const auto status =
      ReadTrace(schema_, "CREATE INDEX ON t (a);\n").status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(TraceIoTest, FileRoundTrip) {
  WorkloadGenerator gen(schema_, 1000, 32);
  Workload original = MakeScaledPaperWorkload("W2", 5, &gen).value();
  const std::string path = ::testing::TempDir() + "/cdpd_trace_test.sql";
  ASSERT_TRUE(WriteTraceFile(path, schema_, original).ok());
  auto parsed = ReadTraceFile(path, schema_);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->statements, original.statements);
  std::remove(path.c_str());
}

TEST_F(TraceIoTest, MissingFileIsNotFound) {
  EXPECT_EQ(ReadTraceFile("/nonexistent/trace.sql", schema_).status().code(),
            StatusCode::kNotFound);
}

TEST_F(TraceIoTest, EmptyTraceIsEmptyWorkload) {
  auto parsed = ReadTrace(schema_, "");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 0u);
}

}  // namespace
}  // namespace cdpd
