#include "index/index_builder.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace cdpd {
namespace {

class IndexBuilderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = std::make_unique<Table>(MakePaperSchema());
    Rng rng(5);
    table_->PopulateUniform(5000, 0, 100, &rng);
  }
  std::unique_ptr<Table> table_;
};

TEST_F(IndexBuilderTest, BuildsSortedTreeOverAllRows) {
  AccessStats stats;
  auto tree = BuildIndex(*table_, IndexDef({0}), &stats);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ((*tree)->num_entries(), 5000);
  EXPECT_TRUE((*tree)->CheckInvariants());

  // Every row is reachable via a seek on its own value.
  for (RowId row = 0; row < 100; ++row) {
    const Value v = table_->GetValue(row, 0);
    bool found = false;
    AccessStats seek_stats;
    (*tree)->SeekPrefix(CompositeKey({v}), &seek_stats,
                        [&](const IndexEntry& e) { found |= e.rid == row; });
    EXPECT_TRUE(found) << "row " << row;
  }
}

TEST_F(IndexBuilderTest, ChargesHeapScanAndLeafWrites) {
  AccessStats stats;
  auto tree = BuildIndex(*table_, IndexDef({1}), &stats);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(stats.sequential_pages, table_->heap_pages());
  EXPECT_GE(stats.written_pages, (*tree)->num_leaves());
  EXPECT_EQ(stats.rows_examined, 5000);
}

TEST_F(IndexBuilderTest, CompositeKeysInLexicographicOrder) {
  AccessStats stats;
  auto tree = BuildIndex(*table_, IndexDef({2, 3}), &stats);
  ASSERT_TRUE(tree.ok());
  std::vector<IndexEntry> entries;
  (*tree)->ScanLeaves(&stats,
                      [&](const IndexEntry& e) { entries.push_back(e); });
  EXPECT_EQ(entries.size(), 5000u);
  EXPECT_TRUE(std::is_sorted(entries.begin(), entries.end()));
  // Every entry's key columns equal the row's column values.
  for (const IndexEntry& entry : entries) {
    EXPECT_EQ(entry.key.value(0), table_->GetValue(entry.rid, 2));
    EXPECT_EQ(entry.key.value(1), table_->GetValue(entry.rid, 3));
  }
}

TEST_F(IndexBuilderTest, RejectsEmptyKey) {
  AccessStats stats;
  EXPECT_EQ(BuildIndex(*table_, IndexDef(std::vector<ColumnId>{}), &stats).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(IndexBuilderTest, RejectsUnknownColumn) {
  AccessStats stats;
  EXPECT_EQ(BuildIndex(*table_, IndexDef({9}), &stats).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(IndexBuilderTest, RejectsTooWideKey) {
  AccessStats stats;
  EXPECT_EQ(
      BuildIndex(*table_, IndexDef({0, 1, 2, 3, 0}), &stats).status().code(),
      StatusCode::kInvalidArgument);
}

TEST_F(IndexBuilderTest, EmptyTableBuildsEmptyIndex) {
  Table empty(MakePaperSchema("e"));
  AccessStats stats;
  auto tree = BuildIndex(empty, IndexDef({0}), &stats);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ((*tree)->num_entries(), 0);
  EXPECT_TRUE((*tree)->CheckInvariants());
}

TEST_F(IndexBuilderTest, LeafCountMatchesAnalyticSize) {
  AccessStats stats;
  auto tree = BuildIndex(*table_, IndexDef({0}), &stats);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ((*tree)->num_leaves(), IndexDef({0}).LeafPages(5000));
  EXPECT_EQ((*tree)->height(), IndexDef({0}).Height(5000));
}

}  // namespace
}  // namespace cdpd
