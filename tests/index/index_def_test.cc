#include "index/index_def.h"

#include <gtest/gtest.h>

#include "storage/page.h"

namespace cdpd {
namespace {

class IndexDefTest : public ::testing::Test {
 protected:
  Schema schema_ = MakePaperSchema();
};

TEST_F(IndexDefTest, FromColumnNamesResolvesColumns) {
  const auto def = IndexDef::FromColumnNames(schema_, {"a", "b"});
  ASSERT_TRUE(def.ok());
  EXPECT_EQ(def->num_key_columns(), 2);
  EXPECT_EQ(def->key_columns()[0], 0);
  EXPECT_EQ(def->key_columns()[1], 1);
}

TEST_F(IndexDefTest, FromColumnNamesRejectsUnknownColumn) {
  EXPECT_EQ(IndexDef::FromColumnNames(schema_, {"x"}).status().code(),
            StatusCode::kNotFound);
}

TEST_F(IndexDefTest, FromColumnNamesRejectsDuplicates) {
  EXPECT_EQ(IndexDef::FromColumnNames(schema_, {"a", "a"}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(IndexDefTest, FromColumnNamesRejectsEmpty) {
  EXPECT_EQ(IndexDef::FromColumnNames(schema_, {}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(IndexDefTest, PrefixAndContainment) {
  const IndexDef ab = IndexDef::FromColumnNames(schema_, {"a", "b"}).value();
  EXPECT_TRUE(ab.HasPrefixColumn(0));
  EXPECT_FALSE(ab.HasPrefixColumn(1));
  EXPECT_TRUE(ab.ContainsColumn(0));
  EXPECT_TRUE(ab.ContainsColumn(1));
  EXPECT_FALSE(ab.ContainsColumn(2));
}

TEST_F(IndexDefTest, KeyOrderMatters) {
  const IndexDef ab = IndexDef::FromColumnNames(schema_, {"a", "b"}).value();
  const IndexDef ba = IndexDef::FromColumnNames(schema_, {"b", "a"}).value();
  EXPECT_FALSE(ab == ba);
  EXPECT_TRUE(ba.HasPrefixColumn(1));
}

TEST_F(IndexDefTest, ToStringRendersColumnNames) {
  const IndexDef ab = IndexDef::FromColumnNames(schema_, {"a", "b"}).value();
  EXPECT_EQ(ab.ToString(schema_), "I(a,b)");
}

TEST_F(IndexDefTest, SizePagesGrowsWithRowsAndWidth) {
  const IndexDef a = IndexDef::FromColumnNames(schema_, {"a"}).value();
  const IndexDef ab = IndexDef::FromColumnNames(schema_, {"a", "b"}).value();
  EXPECT_LT(a.SizePages(1'000'000), ab.SizePages(1'000'000));
  EXPECT_LT(a.SizePages(1'000), a.SizePages(1'000'000));
  EXPECT_EQ(a.SizePages(0), 0);
}

TEST_F(IndexDefTest, LeafPagesMatchesPageMath) {
  const IndexDef a = IndexDef::FromColumnNames(schema_, {"a"}).value();
  EXPECT_EQ(a.LeafPages(100'000), IndexLeafPages(100'000, 1));
}

TEST_F(IndexDefTest, HeightGrowsLogarithmically) {
  const IndexDef a = IndexDef::FromColumnNames(schema_, {"a"}).value();
  EXPECT_EQ(a.Height(1), 1);
  EXPECT_GE(a.Height(2'500'000), 2);
  EXPECT_LE(a.Height(2'500'000), 4);
}

TEST_F(IndexDefTest, HashEqualForEqualDefs) {
  const IndexDef x = IndexDef::FromColumnNames(schema_, {"a", "b"}).value();
  const IndexDef y = IndexDef::FromColumnNames(schema_, {"a", "b"}).value();
  EXPECT_EQ(IndexDefHash{}(x), IndexDefHash{}(y));
}

TEST_F(IndexDefTest, PaperCandidatesAreTheSixOfSection61) {
  const std::vector<IndexDef> candidates = MakePaperCandidateIndexes(schema_);
  ASSERT_EQ(candidates.size(), 6u);
  EXPECT_EQ(candidates[0].ToString(schema_), "I(a)");
  EXPECT_EQ(candidates[1].ToString(schema_), "I(b)");
  EXPECT_EQ(candidates[2].ToString(schema_), "I(c)");
  EXPECT_EQ(candidates[3].ToString(schema_), "I(d)");
  EXPECT_EQ(candidates[4].ToString(schema_), "I(a,b)");
  EXPECT_EQ(candidates[5].ToString(schema_), "I(c,d)");
}

}  // namespace
}  // namespace cdpd
