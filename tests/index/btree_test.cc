#include "index/btree.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace cdpd {
namespace {

IndexDef OneColDef() { return IndexDef({0}); }
IndexDef TwoColDef() { return IndexDef({0, 1}); }

IndexEntry MakeEntry(Value v, RowId rid) {
  IndexEntry entry;
  entry.key.Append(v);
  entry.rid = rid;
  return entry;
}

IndexEntry MakeEntry2(Value v1, Value v2, RowId rid) {
  IndexEntry entry;
  entry.key.Append(v1);
  entry.key.Append(v2);
  entry.rid = rid;
  return entry;
}

TEST(CompositeKeyTest, LexicographicOrder) {
  EXPECT_LT(CompositeKey({1, 2}), CompositeKey({1, 3}));
  EXPECT_LT(CompositeKey({1, 9}), CompositeKey({2, 0}));
  EXPECT_EQ(CompositeKey({1, 2}), CompositeKey({1, 2}));
}

TEST(CompositeKeyTest, PrefixOrdersBeforeExtension) {
  EXPECT_LT(CompositeKey({1}), CompositeKey({1, 0}));
  EXPECT_LT(CompositeKey({1}), CompositeKey({1, -5}));
}

TEST(CompositeKeyTest, MatchesPrefix) {
  const CompositeKey key({3, 7});
  EXPECT_TRUE(key.MatchesPrefix(CompositeKey({3})));
  EXPECT_TRUE(key.MatchesPrefix(CompositeKey({3, 7})));
  EXPECT_FALSE(key.MatchesPrefix(CompositeKey({4})));
}

TEST(BTreeTest, EmptyTreeSeekFindsNothing) {
  BTree tree(OneColDef());
  AccessStats stats;
  int found = 0;
  tree.SeekPrefix(CompositeKey({5}), &stats, [&](const IndexEntry&) {
    ++found;
  });
  EXPECT_EQ(found, 0);
  EXPECT_EQ(tree.num_entries(), 0);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BTreeTest, BulkLoadThenSeek) {
  BTree tree(OneColDef());
  std::vector<IndexEntry> entries;
  for (int i = 0; i < 2000; ++i) entries.push_back(MakeEntry(i, i));
  AccessStats stats;
  tree.BulkLoad(entries, &stats);
  EXPECT_EQ(tree.num_entries(), 2000);
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_GT(stats.written_pages, 0);

  AccessStats seek_stats;
  std::vector<RowId> rids;
  tree.SeekPrefix(CompositeKey({1234}), &seek_stats,
                  [&](const IndexEntry& e) { rids.push_back(e.rid); });
  ASSERT_EQ(rids.size(), 1u);
  EXPECT_EQ(rids[0], 1234);
  EXPECT_EQ(seek_stats.random_pages, tree.height());
}

TEST(BTreeTest, BulkLoadPacksLeavesToPageCapacity) {
  BTree tree(OneColDef());
  std::vector<IndexEntry> entries;
  const int64_t n = tree.leaf_capacity() * 3 + 1;
  for (int64_t i = 0; i < n; ++i) entries.push_back(MakeEntry(i, i));
  AccessStats stats;
  tree.BulkLoad(entries, &stats);
  EXPECT_EQ(tree.num_leaves(), 4);
  EXPECT_EQ(tree.num_leaves(), IndexLeafPages(n, 1));
}

TEST(BTreeTest, SeekFindsAllDuplicates) {
  BTree tree(OneColDef());
  std::vector<IndexEntry> entries;
  // 700 duplicates of key 42 span multiple leaves (capacity 512).
  for (int i = 0; i < 700; ++i) entries.push_back(MakeEntry(42, i));
  for (int i = 0; i < 300; ++i) entries.push_back(MakeEntry(43, 1000 + i));
  std::sort(entries.begin(), entries.end());
  AccessStats stats;
  tree.BulkLoad(entries, &stats);

  std::vector<RowId> rids;
  tree.SeekPrefix(CompositeKey({42}), &stats,
                  [&](const IndexEntry& e) { rids.push_back(e.rid); });
  EXPECT_EQ(rids.size(), 700u);
  EXPECT_TRUE(std::is_sorted(rids.begin(), rids.end()));
}

TEST(BTreeTest, PrefixSeekOnCompositeIndex) {
  BTree tree(TwoColDef());
  std::vector<IndexEntry> entries;
  for (int a = 0; a < 50; ++a) {
    for (int b = 0; b < 20; ++b) {
      entries.push_back(MakeEntry2(a, b, a * 100 + b));
    }
  }
  AccessStats stats;
  tree.BulkLoad(entries, &stats);

  std::vector<Value> seconds;
  tree.SeekPrefix(CompositeKey({7}), &stats, [&](const IndexEntry& e) {
    EXPECT_EQ(e.key.value(0), 7);
    seconds.push_back(e.key.value(1));
  });
  ASSERT_EQ(seconds.size(), 20u);
  EXPECT_TRUE(std::is_sorted(seconds.begin(), seconds.end()));
}

TEST(BTreeTest, InsertMaintainsOrderAndInvariants) {
  BTree tree(OneColDef());
  AccessStats stats;
  Rng rng(99);
  for (int i = 0; i < 3000; ++i) {
    EXPECT_TRUE(tree.Insert(MakeEntry(rng.UniformInt(0, 500), i), &stats));
  }
  EXPECT_EQ(tree.num_entries(), 3000);
  EXPECT_TRUE(tree.CheckInvariants());

  std::vector<IndexEntry> all;
  tree.ScanLeaves(&stats, [&](const IndexEntry& e) { all.push_back(e); });
  EXPECT_EQ(all.size(), 3000u);
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
}

TEST(BTreeTest, InsertRejectsExactDuplicate) {
  BTree tree(OneColDef());
  AccessStats stats;
  EXPECT_TRUE(tree.Insert(MakeEntry(5, 100), &stats));
  EXPECT_FALSE(tree.Insert(MakeEntry(5, 100), &stats));
  EXPECT_TRUE(tree.Insert(MakeEntry(5, 101), &stats));  // Different rid.
  EXPECT_EQ(tree.num_entries(), 2);
}

TEST(BTreeTest, EraseRemovesExactEntry) {
  BTree tree(OneColDef());
  AccessStats stats;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree.Insert(MakeEntry(i, i), &stats));
  }
  EXPECT_TRUE(tree.Erase(MakeEntry(50, 50), &stats));
  EXPECT_FALSE(tree.Erase(MakeEntry(50, 50), &stats));
  EXPECT_EQ(tree.num_entries(), 99);
  int found = 0;
  tree.SeekPrefix(CompositeKey({50}), &stats,
                  [&](const IndexEntry&) { ++found; });
  EXPECT_EQ(found, 0);
}

TEST(BTreeTest, EraseOnlyTargetsMatchingRid) {
  BTree tree(OneColDef());
  AccessStats stats;
  ASSERT_TRUE(tree.Insert(MakeEntry(5, 1), &stats));
  ASSERT_TRUE(tree.Insert(MakeEntry(5, 2), &stats));
  EXPECT_TRUE(tree.Erase(MakeEntry(5, 1), &stats));
  int found = 0;
  RowId remaining = -1;
  tree.SeekPrefix(CompositeKey({5}), &stats, [&](const IndexEntry& e) {
    ++found;
    remaining = e.rid;
  });
  EXPECT_EQ(found, 1);
  EXPECT_EQ(remaining, 2);
}

TEST(BTreeTest, ScanLeavesChargesLeafPages) {
  BTree tree(OneColDef());
  std::vector<IndexEntry> entries;
  for (int i = 0; i < 2000; ++i) entries.push_back(MakeEntry(i, i));
  AccessStats load_stats;
  tree.BulkLoad(entries, &load_stats);
  AccessStats scan_stats;
  tree.ScanLeaves(&scan_stats, [](const IndexEntry&) {});
  EXPECT_EQ(scan_stats.sequential_pages, tree.num_leaves());
}

TEST(BTreeTest, HeightMatchesLevels) {
  BTree tree(OneColDef());
  std::vector<IndexEntry> entries;
  const int64_t n = tree.leaf_capacity() * tree.leaf_capacity();  // 2 levels+
  for (int64_t i = 0; i < n; ++i) entries.push_back(MakeEntry(i, i));
  AccessStats stats;
  tree.BulkLoad(entries, &stats);
  EXPECT_GE(tree.height(), 2);
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_GE(tree.total_pages(), tree.num_leaves());
}

TEST(BTreeTest, MixedBulkLoadInsertErase) {
  BTree tree(TwoColDef());
  std::vector<IndexEntry> entries;
  for (int i = 0; i < 1000; ++i) entries.push_back(MakeEntry2(i, i * 2, i));
  AccessStats stats;
  tree.BulkLoad(entries, &stats);
  for (int i = 1000; i < 1500; ++i) {
    ASSERT_TRUE(tree.Insert(MakeEntry2(i % 997, i, i), &stats));
  }
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(tree.Erase(MakeEntry2(i, i * 2, i), &stats));
  }
  EXPECT_EQ(tree.num_entries(), 1300);
  EXPECT_TRUE(tree.CheckInvariants());
}

}  // namespace
}  // namespace cdpd
