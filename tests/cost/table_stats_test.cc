#include "cost/table_stats.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "cost/cost_model.h"

namespace cdpd {
namespace {

class TableStatsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = std::make_unique<Table>(MakePaperSchema());
    Rng rng(8);
    // Skewed columns: a in [0, 10), b in [0, 100000), c constant,
    // d in [1000, 2000).
    for (int i = 0; i < 20'000; ++i) {
      ASSERT_TRUE(table_
                      ->AppendRow({rng.UniformInt(0, 9),
                                   rng.UniformInt(0, 99'999), 7,
                                   rng.UniformInt(1000, 1999)})
                      .ok());
    }
    stats_ = TableStats::FromTable(*table_);
  }
  std::unique_ptr<Table> table_;
  TableStats stats_;
};

TEST_F(TableStatsTest, BoundsAndDistincts) {
  EXPECT_EQ(stats_.column(0).min_value, 0);
  EXPECT_EQ(stats_.column(0).max_value, 9);
  EXPECT_EQ(stats_.column(0).distinct_estimate, 10);
  EXPECT_EQ(stats_.column(2).distinct_estimate, 1);
  EXPECT_DOUBLE_EQ(stats_.column(2).density, 1.0);
  EXPECT_GT(stats_.column(1).distinct_estimate, 10'000);
}

TEST_F(TableStatsTest, EqMatchesFollowDensity) {
  // Column a: 10 distinct values over 20000 rows -> ~2000 matches.
  EXPECT_NEAR(stats_.ExpectedEqMatches(0), 2000.0, 1.0);
  // Column c: constant -> every row matches.
  EXPECT_DOUBLE_EQ(stats_.ExpectedEqMatches(2), 20'000.0);
  // Column b: nearly unique -> close to 1 match (collisions allowed).
  EXPECT_LT(stats_.ExpectedEqMatches(1), 3.0);
}

TEST_F(TableStatsTest, RangeMatchesUseActualBounds) {
  // Column d lives in [1000, 1999]: a range outside it matches nothing.
  EXPECT_DOUBLE_EQ(stats_.ExpectedRangeMatches(3, 0, 500), 0.0);
  // The full range matches everything.
  EXPECT_NEAR(stats_.ExpectedRangeMatches(3, 1000, 1999), 20'000.0, 1.0);
  // Half the range matches about half.
  EXPECT_NEAR(stats_.ExpectedRangeMatches(3, 1000, 1499), 10'000.0, 600.0);
  // Degenerate range.
  EXPECT_DOUBLE_EQ(stats_.ExpectedRangeMatches(3, 10, 5), 0.0);
}

TEST_F(TableStatsTest, HistogramCapturesSkew) {
  // A lopsided column: 90% of values in one spot.
  Table skewed(MakePaperSchema("s"));
  Rng rng(9);
  for (int i = 0; i < 10'000; ++i) {
    const Value v = i % 10 == 0 ? rng.UniformInt(0, 99'999) : 50;
    ASSERT_TRUE(skewed.AppendRow({v, 0, 0, 0}).ok());
  }
  const TableStats stats = TableStats::FromTable(skewed);
  // The bucket around 50 holds ~90% of rows; a narrow range there
  // matches far more than the uniform assumption predicts.
  const double near_spike = stats.ExpectedRangeMatches(0, 0, 1000);
  const double far_from_spike = stats.ExpectedRangeMatches(0, 60'000, 61'000);
  EXPECT_GT(near_spike, 50 * far_from_spike);
}

TEST_F(TableStatsTest, EmptyTable) {
  Table empty(MakePaperSchema("e"));
  const TableStats stats = TableStats::FromTable(empty);
  EXPECT_EQ(stats.num_rows(), 0);
  EXPECT_DOUBLE_EQ(stats.ExpectedEqMatches(0), 0.0);
  EXPECT_DOUBLE_EQ(stats.ExpectedRangeMatches(0, 0, 10), 0.0);
}

TEST_F(TableStatsTest, OutOfRangeColumnIsZero) {
  EXPECT_DOUBLE_EQ(stats_.ExpectedEqMatches(-1), 0.0);
  EXPECT_DOUBLE_EQ(stats_.ExpectedEqMatches(9), 0.0);
}

TEST_F(TableStatsTest, CostModelUsesAttachedStats) {
  CostModel model(table_->schema(), table_->num_rows(), 500'000);
  // Without stats: uniform assumption says 0.04 matches for any column.
  EXPECT_NEAR(model.ExpectedMatchesFor(0), 0.04, 1e-9);
  model.SetTableStats(&stats_);
  // With stats: column a's real density dominates.
  EXPECT_NEAR(model.ExpectedMatchesFor(0), 2000.0, 1.0);
  EXPECT_NEAR(model.ExpectedMatchesFor(2), 20'000.0, 1.0);
  model.SetTableStats(nullptr);
  EXPECT_NEAR(model.ExpectedMatchesFor(0), 0.04, 1e-9);
}

TEST_F(TableStatsTest, StatsChangeAccessPathDecisions) {
  CostModel model(table_->schema(), table_->num_rows(), 500'000);
  const Configuration ia({IndexDef({0})});
  const BoundStatement query = BoundStatement::SelectPoint(3, 0, 5);
  // Uniform assumption: ~0.04 matches, seek+fetch looks ideal.
  EXPECT_EQ(model.ChooseAccessPath(query, ia).kind,
            AccessPathKind::kIndexSeekWithFetch);
  // Reality: ~2000 matches on column a; fetching 2000 rows at random
  // is worse than scanning 99 pages.
  model.SetTableStats(&stats_);
  EXPECT_EQ(model.ChooseAccessPath(query, ia).kind,
            AccessPathKind::kTableScan);
}

TEST_F(TableStatsTest, ToStringListsEveryColumn) {
  const std::string text = stats_.ToString(table_->schema());
  for (const std::string& name : table_->schema().column_names()) {
    EXPECT_NE(text.find(name + ":"), std::string::npos);
  }
}

}  // namespace
}  // namespace cdpd
