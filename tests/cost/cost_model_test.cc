#include "cost/cost_model.h"

#include <gtest/gtest.h>

namespace cdpd {
namespace {

class CostModelTest : public ::testing::Test {
 protected:
  Schema schema_ = MakePaperSchema();
  // The paper's table: 2.5M rows, values uniform in [0, 500000).
  CostModel model_{schema_, 2'500'000, 500'000};

  Configuration Config(std::vector<IndexDef> defs) {
    return Configuration(std::move(defs));
  }
  BoundStatement Select(ColumnId col) {
    return BoundStatement::SelectPoint(col, col, 0);
  }
};

TEST_F(CostModelTest, ExpectedMatchesIsRowsOverDomain) {
  EXPECT_DOUBLE_EQ(model_.ExpectedMatches(), 5.0);
}

TEST_F(CostModelTest, SeekBeatsCoveringScanBeatsTableScan) {
  const IndexDef ab({0, 1});
  const double seek = model_.StatementCost(Select(0), Config({ab}));
  const double covering = model_.StatementCost(Select(1), Config({ab}));
  const double scan = model_.StatementCost(Select(2), Config({ab}));
  EXPECT_LT(seek, covering);
  EXPECT_LT(covering, scan);
}

TEST_F(CostModelTest, CoveringScanCostTracksIndexWidth) {
  // The leaf level of I(a,b) is ~60% of the heap: its covering scan
  // must be cheaper than a table scan by roughly that ratio.
  const IndexDef ab({0, 1});
  const double covering = model_.StatementCost(Select(1), Config({ab}));
  const double scan =
      model_.StatementCost(Select(1), Configuration::Empty());
  EXPECT_LT(covering, scan);
  EXPECT_GT(covering, 0.4 * scan);
  EXPECT_LT(covering, 0.75 * scan);
}

TEST_F(CostModelTest, ChooseAccessPathPicksExpectedKinds) {
  const IndexDef a({0});
  const IndexDef ab({0, 1});

  EXPECT_EQ(model_.ChooseAccessPath(Select(0), Configuration::Empty()).kind,
            AccessPathKind::kTableScan);
  EXPECT_EQ(model_.ChooseAccessPath(Select(0), Config({a})).kind,
            AccessPathKind::kIndexSeek);
  EXPECT_EQ(model_.ChooseAccessPath(Select(1), Config({ab})).kind,
            AccessPathKind::kCoveringScan);
  // Select d with predicate on a: seek + heap fetch.
  EXPECT_EQ(model_
                .ChooseAccessPath(BoundStatement::SelectPoint(3, 0, 0),
                                  Config({a}))
                .kind,
            AccessPathKind::kIndexSeekWithFetch);
  // Index on a does not help a predicate on c.
  EXPECT_EQ(model_.ChooseAccessPath(Select(2), Config({a})).kind,
            AccessPathKind::kTableScan);
}

TEST_F(CostModelTest, Table2MixPreferences) {
  // The configuration preferences that produce Table 2 (see DESIGN.md):
  // mix A (55% a / 25% b / 10% c / 10% d) prefers I(a,b) over I(a);
  // mix B (25% a / 55% b) prefers I(b) over I(a,b);
  // the merged A+B phase (40/40/10/10) prefers I(a,b) over both.
  auto mix_cost = [&](const std::vector<double>& weights,
                      const Configuration& config) {
    double cost = 0;
    for (ColumnId col = 0; col < 4; ++col) {
      cost += weights[static_cast<size_t>(col)] *
              model_.StatementCost(Select(col), config);
    }
    return cost;
  };
  const Configuration ia = Config({IndexDef({0})});
  const Configuration ib = Config({IndexDef({1})});
  const Configuration iab = Config({IndexDef({0, 1})});

  const std::vector<double> mix_a = {0.55, 0.25, 0.10, 0.10};
  const std::vector<double> mix_b = {0.25, 0.55, 0.10, 0.10};
  const std::vector<double> merged = {0.40, 0.40, 0.10, 0.10};

  EXPECT_LT(mix_cost(mix_a, iab), mix_cost(mix_a, ia));
  EXPECT_LT(mix_cost(mix_b, ib), mix_cost(mix_b, iab));
  EXPECT_LT(mix_cost(merged, iab), mix_cost(merged, ia));
  EXPECT_LT(mix_cost(merged, iab), mix_cost(merged, ib));
}

TEST_F(CostModelTest, UpdateCostGrowsWithAffectedIndexes) {
  const BoundStatement update = BoundStatement::UpdatePoint(1, 5, 0, 7);
  const double no_index =
      model_.StatementCost(update, Configuration::Empty());
  const double one_index =
      model_.StatementCost(update, Config({IndexDef({1})}));
  EXPECT_GT(one_index - model_.StatementCost(Select(0), Config({IndexDef({1})})),
            0.0);
  // With I(b), the update must pay b-entry maintenance on top of row
  // location, which the empty config does not.
  const double locate_empty =
      model_.StatementCost(BoundStatement::SelectPoint(0, 0, 7),
                           Configuration::Empty());
  const double locate_ib = model_.StatementCost(
      BoundStatement::SelectPoint(0, 0, 7), Config({IndexDef({1})}));
  EXPECT_GT(one_index - locate_ib, no_index - locate_empty);
}

TEST_F(CostModelTest, InsertCostGrowsWithIndexCount) {
  const BoundStatement insert = BoundStatement::Insert({1, 2, 3, 4});
  const double zero = model_.StatementCost(insert, Configuration::Empty());
  const double one = model_.StatementCost(insert, Config({IndexDef({0})}));
  const double two = model_.StatementCost(
      insert, Config({IndexDef({0}), IndexDef({2, 3})}));
  EXPECT_LT(zero, one);
  EXPECT_LT(one, two);
}

TEST_F(CostModelTest, TransitionCostSumsBuildsAndDrops) {
  const Configuration from = Config({IndexDef({0})});
  const Configuration to = Config({IndexDef({1})});
  const double trans = model_.TransitionCost(from, to);
  EXPECT_DOUBLE_EQ(trans, model_.BuildCost(IndexDef({1})) +
                              model_.DropCost(IndexDef({0})));
  EXPECT_DOUBLE_EQ(model_.TransitionCost(from, from), 0.0);
}

TEST_F(CostModelTest, BuildCostExceedsScanCost) {
  const double scan =
      model_.StatementCost(Select(0), Configuration::Empty());
  EXPECT_GT(model_.BuildCost(IndexDef({0})), scan);
}

TEST_F(CostModelTest, BuildCostDwarfsDropCost) {
  EXPECT_GT(model_.BuildCost(IndexDef({0})),
            100 * model_.DropCost(IndexDef({0})));
}

TEST_F(CostModelTest, ConfigurationSizeMatchesConfig) {
  const Configuration c = Config({IndexDef({0}), IndexDef({0, 1})});
  EXPECT_EQ(model_.ConfigurationSizePages(c), c.SizePages(2'500'000));
}

TEST_F(CostModelTest, StatsToCostWeighsCounters) {
  AccessStats stats;
  stats.sequential_pages = 10;
  stats.random_pages = 5;
  stats.written_pages = 2;
  stats.rows_examined = 1000;
  const CostParams& p = model_.params();
  EXPECT_DOUBLE_EQ(model_.StatsToCost(stats),
                   10 * p.seq_page_cost + 5 * p.random_page_cost +
                       2 * p.write_page_cost + 1000 * p.cpu_tuple_cost);
}

TEST_F(CostModelTest, AccessPathKindNames) {
  EXPECT_EQ(AccessPathKindToString(AccessPathKind::kTableScan), "TableScan");
  EXPECT_EQ(AccessPathKindToString(AccessPathKind::kCoveringScan),
            "CoveringScan");
}

}  // namespace
}  // namespace cdpd
