#include "cost/what_if.h"

#include <gtest/gtest.h>

namespace cdpd {
namespace {

class WhatIfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Two segments: one all-a queries, one all-b queries.
    for (int i = 0; i < 10; ++i) {
      statements_.push_back(BoundStatement::SelectPoint(0, 0, i));
    }
    for (int i = 0; i < 10; ++i) {
      statements_.push_back(BoundStatement::SelectPoint(1, 1, i));
    }
    segments_ = SegmentFixed(statements_.size(), 10);
    what_if_ = std::make_unique<WhatIfEngine>(&model_, statements_,
                                              segments_);
  }

  Schema schema_ = MakePaperSchema();
  CostModel model_{schema_, 100'000, 1000};
  std::vector<BoundStatement> statements_;
  std::vector<Segment> segments_;
  std::unique_ptr<WhatIfEngine> what_if_;
};

TEST_F(WhatIfTest, SegmentCostSumsStatementCosts) {
  const Configuration empty;
  const double expected =
      10 * model_.StatementCost(BoundStatement::SelectPoint(0, 0, 0), empty);
  EXPECT_DOUBLE_EQ(what_if_->SegmentCost(0, empty), expected);
}

TEST_F(WhatIfTest, SegmentCostDependsOnConfiguration) {
  const Configuration ia({IndexDef({0})});
  EXPECT_LT(what_if_->SegmentCost(0, ia),
            what_if_->SegmentCost(0, Configuration::Empty()));
  // Segment 1 queries b; I(a) does not help it.
  EXPECT_DOUBLE_EQ(what_if_->SegmentCost(1, ia),
                   what_if_->SegmentCost(1, Configuration::Empty()));
}

TEST_F(WhatIfTest, MemoizationAvoidsRecosting) {
  const Configuration empty;
  (void)what_if_->SegmentCost(0, empty);
  const int64_t after_first = what_if_->costings();
  (void)what_if_->SegmentCost(0, empty);
  EXPECT_EQ(what_if_->costings(), after_first);
}

TEST_F(WhatIfTest, ProfilesCollapseStatementsWithEqualShape) {
  // Segment 0 holds 10 queries of one shape: exactly one costing.
  (void)what_if_->SegmentCost(0, Configuration::Empty());
  EXPECT_EQ(what_if_->costings(), 1);
}

TEST_F(WhatIfTest, RangeCostSumsSegments) {
  const Configuration empty;
  EXPECT_DOUBLE_EQ(
      what_if_->RangeCost(0, 2, empty),
      what_if_->SegmentCost(0, empty) + what_if_->SegmentCost(1, empty));
  EXPECT_DOUBLE_EQ(what_if_->RangeCost(1, 1, empty), 0.0);
}

TEST_F(WhatIfTest, TransitionCostForwardsToModel) {
  const Configuration ia({IndexDef({0})});
  EXPECT_DOUBLE_EQ(what_if_->TransitionCost(Configuration::Empty(), ia),
                   model_.TransitionCost(Configuration::Empty(), ia));
}

TEST_F(WhatIfTest, DistinctShapesAreCostedSeparately) {
  std::vector<BoundStatement> mixed;
  mixed.push_back(BoundStatement::SelectPoint(0, 0, 1));
  mixed.push_back(BoundStatement::SelectPoint(1, 1, 2));
  mixed.push_back(BoundStatement::UpdatePoint(2, 3, 0, 4));
  mixed.push_back(BoundStatement::SelectPoint(0, 0, 99));  // Same shape as #1.
  const std::vector<Segment> segments = {{0, mixed.size()}};
  WhatIfEngine engine(&model_, mixed, segments);
  (void)engine.SegmentCost(0, Configuration::Empty());
  EXPECT_EQ(engine.costings(), 3);  // Three distinct shapes.
}

}  // namespace
}  // namespace cdpd
