#include "cost/what_if.h"

#include <limits>
#include <memory>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace cdpd {
namespace {

class WhatIfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Two segments: one all-a queries, one all-b queries.
    for (int i = 0; i < 10; ++i) {
      statements_.push_back(BoundStatement::SelectPoint(0, 0, i));
    }
    for (int i = 0; i < 10; ++i) {
      statements_.push_back(BoundStatement::SelectPoint(1, 1, i));
    }
    segments_ = SegmentFixed(statements_.size(), 10);
    what_if_ = std::make_unique<WhatIfEngine>(&model_, statements_,
                                              segments_);
  }

  Schema schema_ = MakePaperSchema();
  CostModel model_{schema_, 100'000, 1000};
  std::vector<BoundStatement> statements_;
  std::vector<Segment> segments_;
  std::unique_ptr<WhatIfEngine> what_if_;
};

TEST_F(WhatIfTest, SegmentCostSumsStatementCosts) {
  const Configuration empty;
  const double expected =
      10 * model_.StatementCost(BoundStatement::SelectPoint(0, 0, 0), empty);
  EXPECT_DOUBLE_EQ(what_if_->SegmentCost(0, empty), expected);
}

TEST_F(WhatIfTest, SegmentCostDependsOnConfiguration) {
  const Configuration ia({IndexDef({0})});
  EXPECT_LT(what_if_->SegmentCost(0, ia),
            what_if_->SegmentCost(0, Configuration::Empty()));
  // Segment 1 queries b; I(a) does not help it.
  EXPECT_DOUBLE_EQ(what_if_->SegmentCost(1, ia),
                   what_if_->SegmentCost(1, Configuration::Empty()));
}

TEST_F(WhatIfTest, MemoizationAvoidsRecosting) {
  const Configuration empty;
  (void)what_if_->SegmentCost(0, empty);
  const int64_t after_first = what_if_->costings();
  (void)what_if_->SegmentCost(0, empty);
  EXPECT_EQ(what_if_->costings(), after_first);
}

TEST_F(WhatIfTest, ProfilesCollapseStatementsWithEqualShape) {
  // Segment 0 holds 10 queries of one shape: exactly one costing.
  (void)what_if_->SegmentCost(0, Configuration::Empty());
  EXPECT_EQ(what_if_->costings(), 1);
}

TEST_F(WhatIfTest, RangeCostSumsSegments) {
  const Configuration empty;
  EXPECT_DOUBLE_EQ(
      what_if_->RangeCost(0, 2, empty),
      what_if_->SegmentCost(0, empty) + what_if_->SegmentCost(1, empty));
  EXPECT_DOUBLE_EQ(what_if_->RangeCost(1, 1, empty), 0.0);
}

TEST_F(WhatIfTest, TransitionCostForwardsToModel) {
  const Configuration ia({IndexDef({0})});
  EXPECT_DOUBLE_EQ(what_if_->TransitionCost(Configuration::Empty(), ia),
                   model_.TransitionCost(Configuration::Empty(), ia));
}

TEST_F(WhatIfTest, DistinctShapesAreCostedSeparately) {
  std::vector<BoundStatement> mixed;
  mixed.push_back(BoundStatement::SelectPoint(0, 0, 1));
  mixed.push_back(BoundStatement::SelectPoint(1, 1, 2));
  mixed.push_back(BoundStatement::UpdatePoint(2, 3, 0, 4));
  mixed.push_back(BoundStatement::SelectPoint(0, 0, 99));  // Same shape as #1.
  const std::vector<Segment> segments = {{0, mixed.size()}};
  WhatIfEngine engine(&model_, mixed, segments);
  (void)engine.SegmentCost(0, Configuration::Empty());
  EXPECT_EQ(engine.costings(), 3);  // Three distinct shapes.
}

TEST_F(WhatIfTest, PrecomputeValidatesCellsAreFinite) {
  // A poisoned cost model (NaN page cost) must surface as a diagnosed
  // Internal error from the precompute — not as a silent NaN that a DP
  // later compares itself into garbage with.
  CostParams params;
  params.seq_page_cost = std::numeric_limits<double>::quiet_NaN();
  CostModel poisoned(schema_, 100'000, 1000, params);
  WhatIfEngine engine(&poisoned, statements_, segments_);
  const std::vector<Configuration> configs = {Configuration::Empty()};

  Result<CostMatrix> serial = engine.PrecomputeCostMatrix(configs);
  ASSERT_FALSE(serial.ok());
  EXPECT_EQ(serial.status().code(), StatusCode::kInternal);
  // The diagnosis names the segment (its statement range) and the
  // candidate configuration of the offending cell.
  EXPECT_NE(serial.status().ToString().find("segment 0"), std::string::npos)
      << serial.status().ToString();
  EXPECT_NE(serial.status().ToString().find("statements 0..10"),
            std::string::npos)
      << serial.status().ToString();
  EXPECT_NE(serial.status().ToString().find("configuration #0"),
            std::string::npos)
      << serial.status().ToString();

  // The parallel fill reports the identical (lowest) cell, so the
  // error message is thread-count invariant.
  WhatIfEngine fresh(&poisoned, statements_, segments_);
  ThreadPool pool(4);
  Result<CostMatrix> parallel = fresh.PrecomputeCostMatrix(configs, &pool);
  ASSERT_FALSE(parallel.ok());
  EXPECT_EQ(parallel.status().ToString(), serial.status().ToString());
}

TEST_F(WhatIfTest, PrecomputeValidatesTransitionsAreFinite) {
  // Poison only the write path: point-select EXEC cells stay finite,
  // but building an index (a transition) goes through write_page_cost,
  // so the TRANS matrix is where the NaN lands.
  CostParams params;
  params.write_page_cost = std::numeric_limits<double>::infinity();
  CostModel poisoned(schema_, 100'000, 1000, params);
  WhatIfEngine engine(&poisoned, statements_, segments_);
  const std::vector<Configuration> configs = {
      Configuration::Empty(), Configuration({IndexDef({0})})};

  Result<CostMatrix> matrix = engine.PrecomputeCostMatrix(configs);
  ASSERT_FALSE(matrix.ok());
  EXPECT_EQ(matrix.status().code(), StatusCode::kInternal);
  EXPECT_NE(matrix.status().ToString().find("TRANS"), std::string::npos)
      << matrix.status().ToString();
}

}  // namespace
}  // namespace cdpd
