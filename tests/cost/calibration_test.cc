#include "cost/calibration.h"

#include <gtest/gtest.h>

namespace cdpd {
namespace {

class CalibrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = Database::Create(MakePaperSchema(), 60'000, 500'000, /*seed=*/3)
              .value();
  }
  std::unique_ptr<Database> db_;
};

TEST_F(CalibrationTest, ProducesPositiveParameters) {
  auto report = CalibrateCostParams(db_.get());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_DOUBLE_EQ(report->params.seq_page_cost, 1.0);
  EXPECT_GT(report->params.random_page_cost, 0.0);
  EXPECT_GT(report->params.write_page_cost, 0.0);
  EXPECT_GT(report->params.cpu_tuple_cost, 0.0);
  EXPECT_GE(report->params.sort_cpu_factor, 0.0);
  EXPECT_GT(report->seconds_per_seq_page, 0.0);
}

TEST_F(CalibrationTest, TupleCostBelowPageCost) {
  // A page holds ~200 tuples; per-tuple CPU must be far below the
  // per-page cost for the model to make sense.
  auto report = CalibrateCostParams(db_.get());
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report->params.cpu_tuple_cost, 1.0);
}

TEST_F(CalibrationTest, RestoresOriginalConfiguration) {
  const Configuration before({IndexDef({3})});
  AccessStats stats;
  ASSERT_TRUE(db_->ApplyConfiguration(before, &stats).ok());
  auto report = CalibrateCostParams(db_.get());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(db_->current_configuration(), before);
}

TEST_F(CalibrationTest, CalibratedModelPredictsMeasuredRatios) {
  auto report = CalibrateCostParams(db_.get());
  ASSERT_TRUE(report.ok());
  // Build a model with the calibrated parameters and check that the
  // predicted scan-vs-seek ratio matches wall-clock reality within an
  // order of magnitude (in-memory noise allowed).
  CostModel calibrated(db_->schema(), db_->table().num_rows(), 500'000,
                       report->params);
  const double scan_cost = calibrated.StatementCost(
      BoundStatement::SelectPoint(3, 3, 1), Configuration::Empty());
  const double seek_cost = calibrated.StatementCost(
      BoundStatement::SelectPoint(0, 0, 1),
      Configuration({IndexDef({0})}));
  EXPECT_GT(scan_cost / seek_cost, 10.0);
}

TEST_F(CalibrationTest, RejectsTinyTables) {
  auto tiny =
      Database::Create(MakePaperSchema(), 100, 1000, /*seed=*/1).value();
  EXPECT_EQ(CalibrateCostParams(tiny.get()).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(CalibrationTest, RejectsBadOptions) {
  CalibrationOptions options;
  options.repetitions = 0;
  EXPECT_EQ(CalibrateCostParams(db_.get(), options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CalibrationTest, ReportToStringMentionsAllParameters) {
  auto report = CalibrateCostParams(db_.get());
  ASSERT_TRUE(report.ok());
  const std::string text = report->ToString();
  EXPECT_NE(text.find("random_page_cost"), std::string::npos);
  EXPECT_NE(text.find("cpu_tuple_cost"), std::string::npos);
  EXPECT_NE(text.find("sort_cpu_factor"), std::string::npos);
}

}  // namespace
}  // namespace cdpd
