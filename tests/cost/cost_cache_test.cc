// The persistent what-if cost cache: unit behavior of the
// (fingerprint, mask) table and its counters, then the cache through
// the Solve() API — a warm second solve answers >= 90% of probes from
// the cache with an identical schedule, a cost-model change (table
// stats attached) invalidates rather than serving stale costs, the
// cache's own byte cap evicts, a solve-level memory budget refuses
// inserts and degrades through the anytime machinery, and concurrent
// solves may share one cache (run under TSan in CI).

#include "cost/cost_cache.h"

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/resource_tracker.h"
#include "common/rng.h"
#include "core/solver.h"
#include "core/validator.h"
#include "cost/table_stats.h"
#include "../test_util.h"

namespace cdpd {
namespace {

using testing_util::MakeRandomProblem;
using testing_util::ProblemFixture;

TEST(CostCacheTest, LookupInsertAndCounters) {
  CostCache cache;
  cache.EnsureValid(42);
  double cost = 0.0;
  EXPECT_FALSE(cache.Lookup(1, 2, &cost));
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.hits(), 0);

  EXPECT_TRUE(cache.Insert(1, 2, 3.5));
  EXPECT_TRUE(cache.Lookup(1, 2, &cost));
  EXPECT_EQ(cost, 3.5);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.entries(), 1);
  EXPECT_EQ(cache.ApproxBytes(), CostCache::kEntryBytes);

  // Same key, same fingerprint+mask pair: no double charge.
  EXPECT_TRUE(cache.Insert(1, 2, 3.5));
  EXPECT_EQ(cache.entries(), 1);

  // Same fingerprint under a different mask is a distinct entry.
  EXPECT_TRUE(cache.Insert(1, 4, 9.0));
  EXPECT_EQ(cache.entries(), 2);
}

TEST(CostCacheTest, EnsureValidClearsOnTokenChangeOnly) {
  CostCache cache;
  EXPECT_TRUE(cache.EnsureValid(7));  // First validation.
  cache.Insert(1, 1, 1.0);
  cache.Insert(2, 2, 2.0);

  EXPECT_FALSE(cache.EnsureValid(7));  // Already valid: keeps entries.
  EXPECT_EQ(cache.entries(), 2);
  EXPECT_EQ(cache.invalidations(), 0);

  EXPECT_TRUE(cache.EnsureValid(8));  // Token changed: drop everything.
  EXPECT_EQ(cache.entries(), 0);
  EXPECT_EQ(cache.invalidations(), 1);
  EXPECT_EQ(cache.evictions(), 2);  // The dropped entries.
  EXPECT_EQ(cache.validity_token(), 8u);
  double cost = 0.0;
  EXPECT_FALSE(cache.Lookup(1, 1, &cost));
}

TEST(CostCacheTest, OwnByteCapEvictsShards) {
  // Room for four accounted entries; insert far more.
  CostCache cache(4 * CostCache::kEntryBytes);
  cache.EnsureValid(1);
  for (uint64_t i = 0; i < 256; ++i) {
    EXPECT_TRUE(cache.Insert(i, i * 31 + 1, static_cast<double>(i)));
  }
  EXPECT_LE(cache.ApproxBytes(), cache.max_bytes());
  EXPECT_GT(cache.evictions(), 0);
  EXPECT_GT(cache.entries(), 0);  // The newest entry always fits.
}

TEST(CostCacheTest, TrackerRefusalSkipsInsertAndTripsLimit) {
  CostCache cache;
  cache.EnsureValid(1);
  ResourceTracker tracker(CostCache::kEntryBytes);  // Budget: one entry.
  EXPECT_TRUE(cache.Insert(1, 1, 1.0, &tracker));
  EXPECT_FALSE(tracker.limit_exceeded());
  EXPECT_FALSE(cache.Insert(2, 2, 2.0, &tracker));  // Over budget.
  EXPECT_TRUE(tracker.limit_exceeded());
  EXPECT_EQ(cache.entries(), 1);
  EXPECT_EQ(tracker.current_bytes(MemComponent::kCostCache),
            CostCache::kEntryBytes);
  // Reads keep working after a refusal.
  double cost = 0.0;
  EXPECT_TRUE(cache.Lookup(1, 1, &cost));
  EXPECT_EQ(cost, 1.0);
}

TEST(CostCacheTest, EvictionReleasesTrackerChargeExactlyOnce) {
  // Regression: EvictForSpace used to clear shards without releasing
  // the entries' ResourceTracker reservation, so under cap pressure
  // the mem.cost_cache gauge grew monotonically with churn and
  // eventually tripped a limit that the live entries were nowhere
  // near. The tracker's current bytes must equal the *resident*
  // entries exactly, after any amount of eviction.
  CostCache cache(4 * CostCache::kEntryBytes);
  cache.EnsureValid(1);
  // Budget for 16 entries: far above the 4-entry cap, so with correct
  // release accounting the limit can never trip.
  ResourceTracker tracker(16 * CostCache::kEntryBytes);
  for (uint64_t i = 0; i < 512; ++i) {
    EXPECT_TRUE(cache.Insert(i * 2654435761u + 1, i + 1,
                             static_cast<double>(i), &tracker));
    EXPECT_EQ(tracker.current_bytes(MemComponent::kCostCache),
              cache.entries() * CostCache::kEntryBytes);
  }
  EXPECT_GT(cache.evictions(), 0);
  EXPECT_FALSE(tracker.limit_exceeded());
  EXPECT_LE(cache.ApproxBytes(), cache.max_bytes());
}

TEST(CostCacheTest, InvalidationReleasesTrackerCharge) {
  CostCache cache;
  cache.EnsureValid(1);
  ResourceTracker tracker(64 * CostCache::kEntryBytes);
  for (uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(cache.Insert(i + 1, i + 1, 1.0, &tracker));
  }
  ASSERT_EQ(tracker.current_bytes(MemComponent::kCostCache),
            8 * CostCache::kEntryBytes);
  // A token change drops every entry; the charge must go with them.
  EXPECT_TRUE(cache.EnsureValid(2, &tracker));
  EXPECT_EQ(cache.entries(), 0);
  EXPECT_EQ(tracker.current_bytes(MemComponent::kCostCache), 0);
}

TEST(CostCacheTest, EvictionSweepDoesNotStarveShards) {
  // Regression: the eviction sweep used to start at a deterministic
  // shard, so an entry whose shard sat "behind" the usual start could
  // survive unboundedly many eviction episodes while the cache stayed
  // at its cap. The rotating cursor guarantees every shard is reached;
  // a marker entry must not outlive heavy churn.
  CostCache cache(2 * CostCache::kEntryBytes);
  cache.EnsureValid(1);
  ASSERT_TRUE(cache.Insert(1, 1, 1.0));
  double cost = 0.0;
  ASSERT_TRUE(cache.Lookup(1, 1, &cost));
  for (uint64_t i = 0; i < 512; ++i) {
    cache.Insert((i + 2) * 2654435761u, i + 2, static_cast<double>(i));
  }
  EXPECT_FALSE(cache.Lookup(1, 1, &cost));
  EXPECT_LE(cache.ApproxBytes(), cache.max_bytes());
}

TEST(CostCacheTest, PublishToMirrorsResidentState) {
  CostCache cache;
  cache.EnsureValid(5);
  cache.Insert(1, 1, 1.0);
  cache.Insert(2, 2, 2.0);
  cache.EnsureValid(6);
  cache.Insert(3, 3, 3.0);
  MetricsRegistry registry;
  cache.PublishTo(&registry);
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.GaugeValue("cost_cache.entries"), 1);
  EXPECT_EQ(snapshot.GaugeValue("cost_cache.bytes"), CostCache::kEntryBytes);
  EXPECT_EQ(snapshot.GaugeValue("cost_cache.invalidations"), 1);
}

// ---------------------------------------------------------------------
// Through the Solve() API.

SolveOptions CachedOptions(CostCache* cache) {
  SolveOptions options;
  options.method = OptimizerMethod::kOptimal;
  options.k = 2;
  options.num_threads = 1;
  options.cost_cache = cache;
  return options;
}

TEST(CostCacheSolveTest, WarmSecondSolveHitsAtLeastNinetyPercent) {
  auto fixture = MakeRandomProblem(/*seed=*/3, /*num_segments=*/4,
                                   /*block_size=*/10);
  CostCache cache;
  const SolveOptions options = CachedOptions(&cache);

  const SolveResult cold = Solve(fixture->problem, options).value();
  EXPECT_GT(cold.stats.cost_cache_misses, 0);
  EXPECT_GT(cache.entries(), 0);

  // A *fresh* engine over the same workload: the per-engine memo is
  // gone, so every probe answered without recosting came from the
  // persistent cache.
  auto warm_fixture = MakeRandomProblem(/*seed=*/3, /*num_segments=*/4,
                                        /*block_size=*/10);
  const SolveResult warm = Solve(warm_fixture->problem, options).value();
  const int64_t probes =
      warm.stats.cost_cache_hits + warm.stats.cost_cache_misses;
  ASSERT_GT(probes, 0);
  EXPECT_GE(static_cast<double>(warm.stats.cost_cache_hits),
            0.9 * static_cast<double>(probes));
  EXPECT_EQ(cache.invalidations(), 0);

  // Cached costs are bit-identical to computed ones (both sum the
  // per-statement profile in the same order), so the schedule is too.
  EXPECT_EQ(warm.schedule.configs, cold.schedule.configs);
  EXPECT_EQ(warm.schedule.total_cost, cold.schedule.total_cost);
}

TEST(CostCacheSolveTest, CachedSolveMatchesUncachedExactly) {
  auto fixture = MakeRandomProblem(/*seed=*/9, /*num_segments=*/4,
                                   /*block_size=*/10);
  SolveOptions plain = CachedOptions(nullptr);
  const SolveResult uncached = Solve(fixture->problem, plain).value();

  CostCache cache;
  auto cached_fixture = MakeRandomProblem(/*seed=*/9, /*num_segments=*/4,
                                          /*block_size=*/10);
  const SolveResult cached =
      Solve(cached_fixture->problem, CachedOptions(&cache)).value();
  EXPECT_EQ(cached.schedule.configs, uncached.schedule.configs);
  EXPECT_EQ(cached.schedule.total_cost, uncached.schedule.total_cost);
  // Without a cache the stats report zero traffic.
  EXPECT_EQ(uncached.stats.cost_cache_hits, 0);
  EXPECT_EQ(uncached.stats.cost_cache_misses, 0);
}

TEST(CostCacheSolveTest, TableStatsChangeInvalidatesInsteadOfServingStale) {
  auto fixture = MakeRandomProblem(/*seed=*/3, /*num_segments=*/4,
                                   /*block_size=*/10);
  CostCache cache;
  const SolveOptions options = CachedOptions(&cache);
  const SolveResult cold = Solve(fixture->problem, options).value();
  ASSERT_EQ(cache.invalidations(), 0);

  // Attaching table stats changes CostModel::Fingerprint(), hence the
  // validity token: the next solve must drop the cache and recost
  // every distinct key — never mix costs from two model states.
  Table table(fixture->schema);
  Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(table
                    .AppendRow({rng.UniformInt(0, 9),
                                rng.UniformInt(0, 99'999), 7,
                                rng.UniformInt(1000, 1999)})
                    .ok());
  }
  const TableStats stats = TableStats::FromTable(table);
  fixture->model->SetTableStats(&stats);

  const SolveResult refreshed = Solve(fixture->problem, options).value();
  EXPECT_EQ(cache.invalidations(), 1);
  // Misses match the cold solve exactly: the same distinct
  // (shape, config) keys were all recosted. (Hits may be non-zero —
  // duplicate shapes inside the solve reuse the fresh entries.)
  EXPECT_EQ(refreshed.stats.cost_cache_misses, cold.stats.cost_cache_misses);

  // Detaching restores the original fingerprint: invalidate again.
  fixture->model->SetTableStats(nullptr);
  const SolveResult detached = Solve(fixture->problem, options).value();
  EXPECT_EQ(cache.invalidations(), 2);
  EXPECT_GT(detached.stats.cost_cache_misses, 0);
}

TEST(CostCacheSolveTest, CacheByteCapEvictsDuringSolve) {
  auto fixture = MakeRandomProblem(/*seed=*/3, /*num_segments=*/4,
                                   /*block_size=*/10);
  // Far smaller than the workload's shape x config product.
  CostCache tiny(2 * CostCache::kEntryBytes);
  const SolveResult result =
      Solve(fixture->problem, CachedOptions(&tiny)).value();
  EXPECT_GT(result.stats.cost_cache_evictions, 0);
  EXPECT_LE(tiny.ApproxBytes(), tiny.max_bytes());
  // Eviction never changes answers, only reuse.
  auto plain = MakeRandomProblem(/*seed=*/3, /*num_segments=*/4,
                                 /*block_size=*/10);
  const SolveResult reference =
      Solve(plain->problem, CachedOptions(nullptr)).value();
  EXPECT_EQ(result.schedule.configs, reference.schedule.configs);
  EXPECT_EQ(result.schedule.total_cost, reference.schedule.total_cost);
}

TEST(CostCacheSolveTest, SolveMemoryBudgetRefusesInsertsAndDegrades) {
  auto fixture = MakeRandomProblem(/*seed=*/3, /*num_segments=*/4,
                                   /*block_size=*/10);
  CostCache cache;
  SolveOptions options = CachedOptions(&cache);
  options.memory_limit_bytes = 512;  // Below even this tiny problem.
  const Result<SolveResult> solved = Solve(fixture->problem, options);
  ASSERT_TRUE(solved.ok()) << solved.status().ToString();
  // Cache inserts charged to the solve tracker were refused, the limit
  // flag tripped, and the solve degraded through the same anytime
  // machinery as a deadline — still a valid best-effort schedule.
  EXPECT_TRUE(solved->stats.memory_limit_hit);
  EXPECT_TRUE(solved->stats.best_effort);
  EXPECT_TRUE(ValidateSchedule(fixture->problem, solved->schedule, options.k)
                  .ok());
  // The refused inserts bounded the cache's growth under the budget.
  EXPECT_LE(cache.ApproxBytes(), int64_t{512} + CostCache::kEntryBytes);
}

TEST(CostCacheSolveTest, ConcurrentSolvesMayShareOneCache) {
  // Four threads, each with its own engine over the same workload,
  // all funneling through one cache. Under TSan this exercises the
  // sharded Lookup/Insert and EnsureValid against concurrent solves;
  // everywhere it proves sharing cannot change any schedule.
  auto reference_fixture = MakeRandomProblem(/*seed=*/11, /*num_segments=*/4,
                                             /*block_size=*/10);
  const SolveResult reference =
      Solve(reference_fixture->problem, CachedOptions(nullptr)).value();

  CostCache cache;
  constexpr int kThreads = 4;
  std::vector<SolveResult> results(kThreads);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto fixture = MakeRandomProblem(/*seed=*/11, /*num_segments=*/4,
                                       /*block_size=*/10);
      for (int round = 0; round < 2; ++round) {
        const Result<SolveResult> solved =
            Solve(fixture->problem, CachedOptions(&cache));
        if (!solved.ok()) {
          failures.fetch_add(1);
          return;
        }
        results[t] = *solved;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  ASSERT_EQ(failures.load(), 0);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(results[t].schedule.configs, reference.schedule.configs);
    EXPECT_EQ(results[t].schedule.total_cost, reference.schedule.total_cost);
  }
  EXPECT_EQ(cache.invalidations(), 0);  // One shared validity token.
  EXPECT_GT(cache.hits(), 0);
}

}  // namespace
}  // namespace cdpd
