// Concurrency behavior of WhatIfEngine: many threads hammering
// SegmentCost agree with a serial engine, each distinct (segment,
// configuration) pair is costed exactly once, and the parallel
// PrecomputeCostMatrix matches serial probes cell for cell.

#include <cmath>
#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/log.h"
#include "common/progress.h"
#include "common/thread_pool.h"
#include "cost/what_if.h"

namespace cdpd {
namespace {

class WhatIfConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Eight segments cycling over four point-query shapes.
    for (int s = 0; s < 8; ++s) {
      for (int i = 0; i < 10; ++i) {
        statements_.push_back(
            BoundStatement::SelectPoint(s % 4, s % 4, i));
      }
    }
    segments_ = SegmentFixed(statements_.size(), 10);
    what_if_ = std::make_unique<WhatIfEngine>(&model_, statements_,
                                              segments_);

    configs_.push_back(Configuration::Empty());
    for (ColumnId col = 0; col < 4; ++col) {
      configs_.push_back(Configuration({IndexDef({col})}));
    }
  }

  /// A fresh engine over the same workload (cold memo cache).
  std::unique_ptr<WhatIfEngine> FreshEngine() const {
    return std::make_unique<WhatIfEngine>(&model_, statements_, segments_);
  }

  Schema schema_ = MakePaperSchema();
  CostModel model_{schema_, 100'000, 1000};
  std::vector<BoundStatement> statements_;
  std::vector<Segment> segments_;
  std::vector<Configuration> configs_;
  std::unique_ptr<WhatIfEngine> what_if_;
};

TEST_F(WhatIfConcurrencyTest, ConcurrentSegmentCostMatchesSerial) {
  // Serial reference.
  std::unique_ptr<WhatIfEngine> serial = FreshEngine();
  std::vector<double> expected;
  for (size_t s = 0; s < segments_.size(); ++s) {
    for (const Configuration& config : configs_) {
      expected.push_back(serial->SegmentCost(s, config));
    }
  }

  // 8 threads, each probing every (segment, config) pair 4 times.
  const size_t num_pairs = segments_.size() * configs_.size();
  std::vector<double> got(8 * num_pairs, 0.0);
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int rep = 0; rep < 4; ++rep) {
        size_t pair = 0;
        for (size_t s = 0; s < segments_.size(); ++s) {
          for (const Configuration& config : configs_) {
            got[t * num_pairs + pair++] = what_if_->SegmentCost(s, config);
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  for (int t = 0; t < 8; ++t) {
    for (size_t pair = 0; pair < num_pairs; ++pair) {
      ASSERT_EQ(got[t * num_pairs + pair], expected[pair])
          << "thread " << t << " pair " << pair;
    }
  }
  // Exactly-once costing: the shard lock is held across the compute,
  // so the count matches the serial engine despite 8x4 probe rounds.
  EXPECT_EQ(what_if_->costings(), serial->costings());
  EXPECT_GT(what_if_->cache_hits(), 0);
}

TEST_F(WhatIfConcurrencyTest, PrecomputeCostMatrixMatchesSerialProbes) {
  ThreadPool pool(4);
  std::unique_ptr<WhatIfEngine> parallel_engine = FreshEngine();
  Result<CostMatrix> matrix_result =
      parallel_engine->PrecomputeCostMatrix(configs_, &pool);
  ASSERT_TRUE(matrix_result.ok()) << matrix_result.status().ToString();
  const CostMatrix& matrix = *matrix_result;

  ASSERT_EQ(matrix.num_segments(), segments_.size());
  ASSERT_EQ(matrix.num_configs(), configs_.size());
  EXPECT_TRUE(matrix.complete());

  std::unique_ptr<WhatIfEngine> serial = FreshEngine();
  for (size_t s = 0; s < segments_.size(); ++s) {
    for (size_t c = 0; c < configs_.size(); ++c) {
      EXPECT_EQ(matrix.Exec(s, c), serial->SegmentCost(s, configs_[c]))
          << "exec(" << s << ", " << c << ")";
    }
  }
  for (size_t from = 0; from < configs_.size(); ++from) {
    for (size_t to = 0; to < configs_.size(); ++to) {
      EXPECT_EQ(matrix.Trans(from, to),
                serial->TransitionCost(configs_[from], configs_[to]))
          << "trans(" << from << ", " << to << ")";
    }
  }
  // The matrix fill populates the memo, with the same exactly-once
  // costing count as a serial sweep.
  EXPECT_EQ(parallel_engine->costings(), serial->costings());
}

TEST_F(WhatIfConcurrencyTest, PrecomputeWithNullPoolIsIdentical) {
  std::unique_ptr<WhatIfEngine> a = FreshEngine();
  std::unique_ptr<WhatIfEngine> b = FreshEngine();
  ThreadPool pool(4);
  const CostMatrix serial_matrix =
      a->PrecomputeCostMatrix(configs_).value();
  const CostMatrix parallel_matrix =
      b->PrecomputeCostMatrix(configs_, &pool).value();
  for (size_t s = 0; s < segments_.size(); ++s) {
    for (size_t c = 0; c < configs_.size(); ++c) {
      ASSERT_EQ(serial_matrix.Exec(s, c), parallel_matrix.Exec(s, c));
    }
  }
  for (size_t from = 0; from < configs_.size(); ++from) {
    for (size_t to = 0; to < configs_.size(); ++to) {
      ASSERT_EQ(serial_matrix.Trans(from, to),
                parallel_matrix.Trans(from, to));
    }
  }
  EXPECT_EQ(a->costings(), b->costings());
}

TEST_F(WhatIfConcurrencyTest, PrecomputeWithProgressAndLoggerOnlyObserves) {
  // The instrumented fill takes the coarser sharded path (progress !=
  // nullptr) with updates fired from worker threads — under TSan this
  // proves the callback/logger locking discipline; everywhere it
  // proves instrumentation cannot perturb a single matrix cell.
  ThreadPool pool(4);
  std::unique_ptr<WhatIfEngine> instrumented = FreshEngine();
  Logger logger(LogLevel::kDebug);
  std::mutex mutex;
  std::vector<double> fractions;
  ProgressFn progress = [&](const ProgressUpdate& update) {
    std::lock_guard<std::mutex> lock(mutex);
    EXPECT_STREQ(update.phase, "whatif.precompute");
    fractions.push_back(update.fraction);
  };
  const CostMatrix instrumented_matrix =
      instrumented
          ->PrecomputeCostMatrix(configs_, &pool, /*tracer=*/nullptr,
                                 /*budget=*/nullptr, &progress, &logger)
          .value();

  std::unique_ptr<WhatIfEngine> plain = FreshEngine();
  const CostMatrix plain_matrix =
      plain->PrecomputeCostMatrix(configs_, &pool).value();
  for (size_t s = 0; s < segments_.size(); ++s) {
    for (size_t c = 0; c < configs_.size(); ++c) {
      ASSERT_EQ(instrumented_matrix.Exec(s, c), plain_matrix.Exec(s, c));
    }
  }
  for (size_t from = 0; from < configs_.size(); ++from) {
    for (size_t to = 0; to < configs_.size(); ++to) {
      ASSERT_EQ(instrumented_matrix.Trans(from, to),
                plain_matrix.Trans(from, to));
    }
  }
  EXPECT_EQ(instrumented->costings(), plain->costings());

  // Every shard reported a fraction in (0, 1], and the last one
  // reported exactly 1.0 (done == num_shards).
  ASSERT_FALSE(fractions.empty());
  for (double fraction : fractions) {
    EXPECT_GT(fraction, 0.0);
    EXPECT_LE(fraction, 1.0);
  }
  EXPECT_DOUBLE_EQ(*std::max_element(fractions.begin(), fractions.end()),
                   1.0);

  // The logger captured the precompute bracket.
  const std::string log = logger.ToJsonl();
  EXPECT_NE(log.find("\"event\":\"whatif.precompute.start\""),
            std::string::npos);
  EXPECT_NE(log.find("\"event\":\"whatif.precompute.end\""),
            std::string::npos);
  EXPECT_NE(log.find("\"complete\":true"), std::string::npos);
}

TEST_F(WhatIfConcurrencyTest, ExecRangeMatchesRangeCost) {
  ThreadPool pool(2);
  const CostMatrix matrix =
      what_if_->PrecomputeCostMatrix(configs_, &pool).value();
  for (size_t c = 0; c < configs_.size(); ++c) {
    // ExecRange is a prefix-sum difference, so it matches the forward
    // segment-order sum only up to floating-point re-association.
    const double expected = what_if_->RangeCost(2, 6, configs_[c]);
    EXPECT_NEAR(matrix.ExecRange(2, 6, c), expected,
                1e-9 * std::max(1.0, std::abs(expected)));
    EXPECT_EQ(matrix.ExecRange(3, 3, c), 0.0);
  }
}

}  // namespace
}  // namespace cdpd
