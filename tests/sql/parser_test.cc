#include "sql/parser.h"

#include <gtest/gtest.h>

namespace cdpd {
namespace {

TEST(ParserTest, ParsesPointSelect) {
  auto ast = ParseStatement("SELECT a FROM t WHERE a = 123");
  ASSERT_TRUE(ast.ok());
  const auto* select = std::get_if<SelectAst>(&ast.value());
  ASSERT_NE(select, nullptr);
  EXPECT_EQ(select->select_column, "a");
  EXPECT_EQ(select->table, "t");
  EXPECT_EQ(select->where_column, "a");
  EXPECT_EQ(select->where_value, 123);
}

TEST(ParserTest, SelectAndWhereColumnsMayDiffer) {
  auto ast = ParseStatement("select b from t where c = 5");
  ASSERT_TRUE(ast.ok());
  const auto& select = std::get<SelectAst>(ast.value());
  EXPECT_EQ(select.select_column, "b");
  EXPECT_EQ(select.where_column, "c");
}

TEST(ParserTest, KeywordsAreCaseInsensitive) {
  EXPECT_TRUE(ParseStatement("sElEcT a FrOm t wHeRe a = 1").ok());
}

TEST(ParserTest, TrailingSemicolonAllowed) {
  EXPECT_TRUE(ParseStatement("SELECT a FROM t WHERE a = 1;").ok());
}

TEST(ParserTest, ParsesUpdate) {
  auto ast = ParseStatement("UPDATE t SET b = 7 WHERE a = 3");
  ASSERT_TRUE(ast.ok());
  const auto& update = std::get<UpdateAst>(ast.value());
  EXPECT_EQ(update.set_column, "b");
  EXPECT_EQ(update.set_value, 7);
  EXPECT_EQ(update.where_column, "a");
  EXPECT_EQ(update.where_value, 3);
}

TEST(ParserTest, ParsesInsert) {
  auto ast = ParseStatement("INSERT INTO t VALUES (1, 2, 3, 4)");
  ASSERT_TRUE(ast.ok());
  const auto& insert = std::get<InsertAst>(ast.value());
  EXPECT_EQ(insert.table, "t");
  EXPECT_EQ(insert.values, (std::vector<int64_t>{1, 2, 3, 4}));
}

TEST(ParserTest, ParsesCreateIndex) {
  auto ast = ParseStatement("CREATE INDEX ON t (a, b)");
  ASSERT_TRUE(ast.ok());
  const auto& create = std::get<CreateIndexAst>(ast.value());
  EXPECT_EQ(create.table, "t");
  EXPECT_EQ(create.columns, (std::vector<std::string>{"a", "b"}));
}

TEST(ParserTest, ParsesDropIndex) {
  auto ast = ParseStatement("DROP INDEX ON t (c)");
  ASSERT_TRUE(ast.ok());
  const auto& drop = std::get<DropIndexAst>(ast.value());
  EXPECT_EQ(drop.columns, (std::vector<std::string>{"c"}));
}

TEST(ParserTest, RejectsMissingWhere) {
  EXPECT_EQ(ParseStatement("SELECT a FROM t").status().code(),
            StatusCode::kParseError);
}

TEST(ParserTest, RejectsTrailingGarbage) {
  EXPECT_EQ(ParseStatement("SELECT a FROM t WHERE a = 1 nonsense")
                .status()
                .code(),
            StatusCode::kParseError);
}

TEST(ParserTest, RejectsEmptyStatement) {
  EXPECT_EQ(ParseStatement("   ").status().code(), StatusCode::kParseError);
}

TEST(ParserTest, RejectsUnknownVerb) {
  EXPECT_EQ(ParseStatement("DELETE FROM t").status().code(),
            StatusCode::kParseError);
}

TEST(ParserTest, RejectsNonIntegerLiteral) {
  EXPECT_EQ(ParseStatement("SELECT a FROM t WHERE a = b").status().code(),
            StatusCode::kParseError);
}

TEST(ParserTest, ErrorMessageNamesOffsetAndToken) {
  const auto status =
      ParseStatement("SELECT a FROM t WHERE a = 1 x").status();
  EXPECT_NE(status.message().find("offset"), std::string::npos);
  EXPECT_NE(status.message().find("'x'"), std::string::npos);
}

TEST(ParserTest, AstRoundTripsThroughPrinter) {
  const std::vector<std::string> statements = {
      "SELECT a FROM t WHERE b = 10",
      "UPDATE t SET c = 5 WHERE d = -2",
      "INSERT INTO t VALUES (1, 2, 3, 4)",
      "CREATE INDEX ON t (a, b)",
      "DROP INDEX ON t (c, d)",
  };
  for (const std::string& sql : statements) {
    auto ast = ParseStatement(sql);
    ASSERT_TRUE(ast.ok()) << sql;
    EXPECT_EQ(AstToString(ast.value()), sql);
    // Printing then re-parsing is a fixed point.
    auto again = ParseStatement(AstToString(ast.value()));
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(ast.value(), again.value());
  }
}

TEST(ParserTest, ParseScriptSplitsOnSemicolons) {
  auto script = ParseScript(
      "SELECT a FROM t WHERE a = 1; \n UPDATE t SET b = 2 WHERE c = 3;\n;");
  ASSERT_TRUE(script.ok());
  EXPECT_EQ(script->size(), 2u);
}

TEST(ParserTest, ParseScriptPropagatesErrors) {
  EXPECT_FALSE(ParseScript("SELECT a FROM t WHERE a = 1; garbage").ok());
}

}  // namespace
}  // namespace cdpd
