#include "sql/binder.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace cdpd {
namespace {

class BinderTest : public ::testing::Test {
 protected:
  BoundStatement Bind(const std::string& sql) {
    auto ast = ParseStatement(sql);
    EXPECT_TRUE(ast.ok()) << sql;
    auto bound = BindStatement(schema_, ast.value());
    EXPECT_TRUE(bound.ok()) << bound.status();
    return bound.value();
  }
  Status BindError(const std::string& sql) {
    auto ast = ParseStatement(sql);
    EXPECT_TRUE(ast.ok()) << sql;
    return BindStatement(schema_, ast.value()).status();
  }
  Schema schema_ = MakePaperSchema();
};

TEST_F(BinderTest, BindsSelect) {
  const BoundStatement s = Bind("SELECT b FROM t WHERE a = 10");
  EXPECT_EQ(s.type, StatementType::kSelectPoint);
  EXPECT_EQ(s.select_column, 1);
  EXPECT_EQ(s.where_column, 0);
  EXPECT_EQ(s.where_value, 10);
}

TEST_F(BinderTest, BindsUpdate) {
  const BoundStatement s = Bind("UPDATE t SET d = 9 WHERE c = 8");
  EXPECT_EQ(s.type, StatementType::kUpdatePoint);
  EXPECT_EQ(s.set_column, 3);
  EXPECT_EQ(s.set_value, 9);
  EXPECT_EQ(s.where_column, 2);
  EXPECT_EQ(s.where_value, 8);
}

TEST_F(BinderTest, BindsInsert) {
  const BoundStatement s = Bind("INSERT INTO t VALUES (4, 3, 2, 1)");
  EXPECT_EQ(s.type, StatementType::kInsert);
  EXPECT_EQ(s.insert_values, (std::vector<Value>{4, 3, 2, 1}));
}

TEST_F(BinderTest, RejectsUnknownTable) {
  EXPECT_EQ(BindError("SELECT a FROM wrong WHERE a = 1").code(),
            StatusCode::kInvalidArgument);
}

TEST_F(BinderTest, RejectsUnknownColumn) {
  EXPECT_EQ(BindError("SELECT z FROM t WHERE a = 1").code(),
            StatusCode::kNotFound);
}

TEST_F(BinderTest, RejectsInsertArityMismatch) {
  EXPECT_EQ(BindError("INSERT INTO t VALUES (1, 2)").code(),
            StatusCode::kInvalidArgument);
}

TEST_F(BinderTest, DdlGoesThroughBindIndexDdl) {
  auto ast = ParseStatement("CREATE INDEX ON t (a, b)");
  ASSERT_TRUE(ast.ok());
  EXPECT_EQ(BindStatement(schema_, ast.value()).status().code(),
            StatusCode::kInvalidArgument);
  bool create = false;
  auto def = BindIndexDdl(schema_, ast.value(), &create);
  ASSERT_TRUE(def.ok());
  EXPECT_TRUE(create);
  EXPECT_EQ(def->ToString(schema_), "I(a,b)");
}

TEST_F(BinderTest, DropIndexDdlSetsCreateFalse) {
  auto ast = ParseStatement("DROP INDEX ON t (c)");
  ASSERT_TRUE(ast.ok());
  bool create = true;
  auto def = BindIndexDdl(schema_, ast.value(), &create);
  ASSERT_TRUE(def.ok());
  EXPECT_FALSE(create);
}

TEST_F(BinderTest, BindIndexDdlRejectsDml) {
  auto ast = ParseStatement("SELECT a FROM t WHERE a = 1");
  ASSERT_TRUE(ast.ok());
  bool create = false;
  EXPECT_EQ(BindIndexDdl(schema_, ast.value(), &create).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(BinderTest, BoundStatementToStringMatchesSql) {
  const BoundStatement s = Bind("SELECT b FROM t WHERE a = 10");
  EXPECT_EQ(s.ToString(schema_), "SELECT b FROM t WHERE a = 10");
}

}  // namespace
}  // namespace cdpd
