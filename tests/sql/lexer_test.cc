#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace cdpd {
namespace {

TEST(LexerTest, EmptyInputYieldsEndToken) {
  auto tokens = Tokenize("");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 1u);
  EXPECT_EQ(tokens->front().type, TokenType::kEnd);
}

TEST(LexerTest, TokenizesSelectStatement) {
  auto tokens = Tokenize("SELECT a FROM t WHERE a = 42");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 9u);  // 8 tokens + end.
  EXPECT_EQ((*tokens)[0].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[6].type, TokenType::kEquals);
  EXPECT_EQ((*tokens)[7].type, TokenType::kInteger);
  EXPECT_EQ((*tokens)[7].value, 42);
}

TEST(LexerTest, SymbolsAndStar) {
  auto tokens = Tokenize("( ) , = * ;");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kLeftParen);
  EXPECT_EQ((*tokens)[1].type, TokenType::kRightParen);
  EXPECT_EQ((*tokens)[2].type, TokenType::kComma);
  EXPECT_EQ((*tokens)[3].type, TokenType::kEquals);
  EXPECT_EQ((*tokens)[4].type, TokenType::kStar);
  EXPECT_EQ((*tokens)[5].type, TokenType::kSemicolon);
}

TEST(LexerTest, NegativeIntegers) {
  auto tokens = Tokenize("-17");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kInteger);
  EXPECT_EQ((*tokens)[0].value, -17);
}

TEST(LexerTest, Int64Boundaries) {
  auto max = Tokenize("9223372036854775807");
  ASSERT_TRUE(max.ok());
  EXPECT_EQ((*max)[0].value, INT64_MAX);
  auto min = Tokenize("-9223372036854775808");
  ASSERT_TRUE(min.ok());
  EXPECT_EQ((*min)[0].value, INT64_MIN);
}

TEST(LexerTest, OverflowingIntegerIsParseError) {
  EXPECT_EQ(Tokenize("9223372036854775808").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(Tokenize("-9223372036854775809").status().code(),
            StatusCode::kParseError);
}

TEST(LexerTest, StrayMinusIsParseError) {
  EXPECT_EQ(Tokenize("- x").status().code(), StatusCode::kParseError);
}

TEST(LexerTest, IdentifiersWithUnderscoresAndDigits) {
  auto tokens = Tokenize("col_1 _tmp x9");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "col_1");
  EXPECT_EQ((*tokens)[1].text, "_tmp");
  EXPECT_EQ((*tokens)[2].text, "x9");
}

TEST(LexerTest, UnknownCharacterIsParseError) {
  const auto status = Tokenize("SELECT @ FROM t").status();
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_NE(status.message().find("'@'"), std::string::npos);
}

TEST(LexerTest, PositionsAreByteOffsets) {
  auto tokens = Tokenize("ab  cd");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].position, 0u);
  EXPECT_EQ((*tokens)[1].position, 4u);
}

}  // namespace
}  // namespace cdpd
