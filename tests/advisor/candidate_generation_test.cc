#include "advisor/candidate_generation.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "workload/generator.h"
#include "workload/standard_workloads.h"

namespace cdpd {
namespace {

class CandidateGenTest : public ::testing::Test {
 protected:
  Schema schema_ = MakePaperSchema();

  bool Has(const std::vector<IndexDef>& candidates, const std::string& name) {
    return std::any_of(candidates.begin(), candidates.end(),
                       [&](const IndexDef& def) {
                         return def.ToString(schema_) == name;
                       });
  }
};

TEST_F(CandidateGenTest, PaperWorkloadYieldsSection61Candidates) {
  WorkloadGenerator gen(schema_, 500'000, 21);
  Workload w1 = MakeScaledPaperWorkload("W1", 200, &gen).value();
  const std::vector<Segment> segments = SegmentFixed(w1.size(), 200);
  const std::vector<IndexDef> candidates =
      GenerateCandidateIndexes(schema_, w1.statements, segments);
  EXPECT_EQ(candidates.size(), 6u);
  EXPECT_TRUE(Has(candidates, "I(a)"));
  EXPECT_TRUE(Has(candidates, "I(b)"));
  EXPECT_TRUE(Has(candidates, "I(c)"));
  EXPECT_TRUE(Has(candidates, "I(d)"));
  EXPECT_TRUE(Has(candidates, "I(a,b)"));
  EXPECT_TRUE(Has(candidates, "I(c,d)"));
  EXPECT_FALSE(Has(candidates, "I(b,a)"));
}

TEST_F(CandidateGenTest, EmptyWorkloadYieldsNoCandidates) {
  EXPECT_TRUE(GenerateCandidateIndexes(schema_, {}, {}).empty());
}

TEST_F(CandidateGenTest, InsertsAloneProposeNothing) {
  std::vector<BoundStatement> statements = {
      BoundStatement::Insert({1, 2, 3, 4})};
  EXPECT_TRUE(GenerateCandidateIndexes(schema_, statements, {}).empty());
}

TEST_F(CandidateGenTest, InfrequentColumnsAreSkipped) {
  std::vector<BoundStatement> statements;
  for (int i = 0; i < 99; ++i) {
    statements.push_back(BoundStatement::SelectPoint(0, 0, i));
  }
  statements.push_back(BoundStatement::SelectPoint(2, 2, 0));  // 1%.
  CandidateGenOptions options;
  options.min_column_frequency = 0.05;
  const auto candidates =
      GenerateCandidateIndexes(schema_, statements, {}, options);
  EXPECT_TRUE(Has(candidates, "I(a)"));
  EXPECT_FALSE(Has(candidates, "I(c)"));
}

TEST_F(CandidateGenTest, MaxKeyColumnsOneDisablesComposites) {
  WorkloadGenerator gen(schema_, 1000, 22);
  Workload w1 = MakeScaledPaperWorkload("W1", 100, &gen).value();
  CandidateGenOptions options;
  options.max_key_columns = 1;
  const auto candidates =
      GenerateCandidateIndexes(schema_, w1.statements,
                               SegmentFixed(w1.size(), 100), options);
  for (const IndexDef& def : candidates) {
    EXPECT_EQ(def.num_key_columns(), 1);
  }
}

TEST_F(CandidateGenTest, CompositeOrderIsCanonical) {
  // Column c dominates, then a: composite must be I(c,a).
  std::vector<BoundStatement> statements;
  for (int i = 0; i < 60; ++i) {
    statements.push_back(BoundStatement::SelectPoint(2, 2, i));
  }
  for (int i = 0; i < 40; ++i) {
    statements.push_back(BoundStatement::SelectPoint(0, 0, i));
  }
  const auto candidates = GenerateCandidateIndexes(schema_, statements, {});
  EXPECT_TRUE(Has(candidates, "I(c,a)"));
  EXPECT_FALSE(Has(candidates, "I(a,c)"));
}

TEST_F(CandidateGenTest, MaxCompositesCapsPairCount) {
  WorkloadGenerator gen(schema_, 1000, 23);
  Workload w1 = MakeScaledPaperWorkload("W1", 100, &gen).value();
  CandidateGenOptions options;
  options.max_composites = 1;
  const auto candidates =
      GenerateCandidateIndexes(schema_, w1.statements,
                               SegmentFixed(w1.size(), 100), options);
  int composites = 0;
  for (const IndexDef& def : candidates) {
    if (def.num_key_columns() == 2) ++composites;
  }
  EXPECT_EQ(composites, 1);
}

TEST_F(CandidateGenTest, UpdatePredicatesCountTowardCandidates) {
  std::vector<BoundStatement> statements;
  for (int i = 0; i < 50; ++i) {
    statements.push_back(BoundStatement::UpdatePoint(1, 0, 3, i));
  }
  const auto candidates = GenerateCandidateIndexes(schema_, statements, {});
  EXPECT_TRUE(Has(candidates, "I(d)"));
}

}  // namespace
}  // namespace cdpd
