#include "advisor/dominance.h"

#include <chrono>

#include <gtest/gtest.h>

#include "common/budget.h"
#include "common/resource_tracker.h"
#include "common/thread_pool.h"
#include "core/k_aware_graph.h"
#include "test_util.h"

namespace cdpd {
namespace {

using testing_util::MakeRandomProblem;

/// The fixture's problem with `extra` duplicates of existing member
/// configurations appended at the end — each duplicate is dominated by
/// its lower-id twin (identical cost vector, zero mutual transitions),
/// so pruning must eliminate exactly the appended tail.
DesignProblem WithDuplicates(const DesignProblem& problem, size_t extra) {
  DesignProblem out = problem;
  std::vector<Configuration> configs = problem.candidates.configs();
  const size_t base = configs.size();
  for (size_t i = 0; i < extra; ++i) {
    configs.push_back(configs[1 + (i % (base - 1))]);
  }
  out.candidates = configs;
  return out;
}

TEST(DominanceTest, DuplicatesArePrunedKeepingLowestId) {
  auto fixture = MakeRandomProblem(3, /*num_segments=*/6, /*block_size=*/10);
  const size_t base = fixture->problem.candidates.size();
  const DesignProblem problem = WithDuplicates(fixture->problem, 3);

  const DominanceResult result = PruneDominatedConfigs(problem);
  EXPECT_EQ(result.pruned, 3);
  ASSERT_EQ(result.survivors.size(), base);
  for (size_t i = 0; i < base; ++i) {
    EXPECT_EQ(result.survivors[i], static_cast<ConfigId>(i));
  }
}

TEST(DominanceTest, TrivialSpacesAreIdentity) {
  auto fixture = MakeRandomProblem(5, /*num_segments=*/4, /*block_size=*/10);
  DesignProblem problem = fixture->problem;
  problem.candidates = {problem.candidates[0]};
  const DominanceResult result = PruneDominatedConfigs(problem);
  EXPECT_EQ(result.pruned, 0);
  EXPECT_EQ(result.survivors, std::vector<ConfigId>{0});
}

TEST(DominanceTest, InitialConfigurationIsNeverPruned) {
  // A duplicate of the initial configuration would normally lose to
  // its lower-id twin, but the configuration equal to problem.initial
  // is exempt: with count_initial_change it is the only free start.
  auto fixture = MakeRandomProblem(7, /*num_segments=*/6, /*block_size=*/10);
  DesignProblem problem = fixture->problem;
  std::vector<Configuration> configs = problem.candidates.configs();
  const size_t base = configs.size();
  configs.push_back(configs[2]);            // Plain duplicate: pruned.
  configs.push_back(Configuration::Empty());  // Duplicate of initial: kept.
  problem.candidates = configs;
  ASSERT_EQ(problem.initial, Configuration::Empty());

  const DominanceResult result = PruneDominatedConfigs(problem);
  EXPECT_EQ(result.pruned, 1);
  ASSERT_EQ(result.survivors.size(), base + 1);
  EXPECT_EQ(result.survivors.back(), static_cast<ConfigId>(base + 1));
}

TEST(DominanceTest, ExpiredBudgetAcceptsRemainderUnpruned) {
  auto fixture = MakeRandomProblem(9, /*num_segments=*/6, /*block_size=*/10);
  const DesignProblem problem = WithDuplicates(fixture->problem, 4);
  const Budget expired(std::chrono::nanoseconds{0});
  const DominanceResult result =
      PruneDominatedConfigs(problem, nullptr, &expired);
  EXPECT_EQ(result.pruned, 0);
  EXPECT_EQ(result.survivors.size(), problem.candidates.size());
}

TEST(DominanceTest, RefusedMemoryReservationIsIdentity) {
  auto fixture = MakeRandomProblem(11, /*num_segments=*/6, /*block_size=*/10);
  const DesignProblem problem = WithDuplicates(fixture->problem, 4);
  ResourceTracker tracker(/*limit_bytes=*/1);
  const DominanceResult result =
      PruneDominatedConfigs(problem, nullptr, nullptr, nullptr, &tracker);
  EXPECT_EQ(result.pruned, 0);
  EXPECT_EQ(result.survivors.size(), problem.candidates.size());
}

TEST(DominanceTest, DeterministicForAnyThreadCount) {
  auto fixture = MakeRandomProblem(13, /*num_segments=*/8, /*block_size=*/10,
                                   /*max_indexes_per_config=*/2);
  const DesignProblem problem = WithDuplicates(fixture->problem, 5);
  const DominanceResult serial = PruneDominatedConfigs(problem);
  for (int threads : {2, 4}) {
    ThreadPool pool(threads);
    const DominanceResult parallel = PruneDominatedConfigs(problem, &pool);
    EXPECT_EQ(parallel.survivors, serial.survivors) << threads << " threads";
    EXPECT_EQ(parallel.pruned, serial.pruned);
  }
}

TEST(DominanceTest, PrunedSpaceKeepsTheOptimum) {
  // The replacement argument end to end: the optimal k-aware cost over
  // the pruned subset equals the optimal cost over the full space,
  // for every change budget.
  for (uint64_t seed : {21u, 22u, 23u}) {
    auto fixture = MakeRandomProblem(seed, /*num_segments=*/8,
                                     /*block_size=*/10);
    const DesignProblem problem = WithDuplicates(fixture->problem, 4);
    const DominanceResult pruning = PruneDominatedConfigs(problem);
    ASSERT_GT(pruning.pruned, 0);
    DesignProblem pruned = problem;
    pruned.candidates = problem.candidates.Subset(pruning.survivors);
    for (int64_t k = 0; k <= 3; ++k) {
      auto full = SolveKAware(problem, k);
      auto sub = SolveKAware(pruned, k);
      ASSERT_TRUE(full.ok());
      ASSERT_TRUE(sub.ok());
      EXPECT_NEAR(sub->total_cost, full->total_cost,
                  1e-9 * full->total_cost)
          << "seed=" << seed << " k=" << k;
    }
  }
}

}  // namespace
}  // namespace cdpd
