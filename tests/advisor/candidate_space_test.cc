// CandidateSpace: the pinned candidate set behind the ConfigId/bitmask
// API. ConfigIds follow insertion order, the universe is the sorted
// dedup union of member indexes, masks are exact bijections while the
// universe fits in 64 bits (and degrade to fingerprints beyond),
// fingerprint() identifies the whole space while
// universe_fingerprint() identifies only the bit layout the cost
// cache keys on.

#include "advisor/candidate_space.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace cdpd {
namespace {

std::vector<Configuration> PaperishConfigs() {
  // Deliberately out of sorted order and with a shared index between
  // members, so the universe has to dedup and resort.
  return {
      Configuration::Empty(),
      Configuration({IndexDef({2})}),
      Configuration({IndexDef({0})}),
      Configuration({IndexDef({0}), IndexDef({2})}),
      Configuration({IndexDef({1}), IndexDef({3})}),
  };
}

TEST(CandidateSpaceTest, EmptySpace) {
  const CandidateSpace space;
  EXPECT_TRUE(space.empty());
  EXPECT_EQ(space.size(), 0u);
  EXPECT_TRUE(space.universe().empty());
  EXPECT_TRUE(space.exact_masks());
  EXPECT_EQ(space, CandidateSpace());
}

TEST(CandidateSpaceTest, ConfigIdsArePinnedInsertionOrder) {
  const std::vector<Configuration> configs = PaperishConfigs();
  const CandidateSpace space(configs);
  ASSERT_EQ(space.size(), configs.size());
  for (size_t i = 0; i < configs.size(); ++i) {
    EXPECT_EQ(space[i], configs[i]) << "id " << i;
    const std::optional<ConfigId> id = space.IdOf(configs[i]);
    ASSERT_TRUE(id.has_value()) << "id " << i;
    EXPECT_EQ(*id, static_cast<ConfigId>(i));
  }
  // Iteration visits the same pinned order.
  size_t i = 0;
  for (const Configuration& config : space) EXPECT_EQ(config, configs[i++]);
}

TEST(CandidateSpaceTest, UniverseIsSortedDedupUnion) {
  const CandidateSpace space(PaperishConfigs());
  // Four distinct single-column indexes across the five members.
  ASSERT_EQ(space.num_indexes(), 4u);
  for (size_t i = 1; i < space.universe().size(); ++i) {
    EXPECT_TRUE(space.universe()[i - 1] < space.universe()[i]);
  }
}

TEST(CandidateSpaceTest, MasksAreExactBitmasksOverTheUniverse) {
  const CandidateSpace space(PaperishConfigs());
  ASSERT_TRUE(space.exact_masks());
  std::set<uint64_t> seen;
  for (size_t id = 0; id < space.size(); ++id) {
    const uint64_t mask = space.mask(id);
    EXPECT_TRUE(seen.insert(mask).second) << "mask collision at id " << id;
    // Reconstructing the index set from the mask bits gives back the
    // configuration exactly.
    std::vector<IndexDef> rebuilt;
    for (size_t bit = 0; bit < space.num_indexes(); ++bit) {
      if ((mask >> bit) & 1) rebuilt.push_back(space.universe()[bit]);
    }
    EXPECT_EQ(Configuration(rebuilt), space[id]) << "id " << id;
  }
  EXPECT_EQ(space.mask(0), 0u);  // Empty configuration.
}

TEST(CandidateSpaceTest, MaskOfHandlesNonMembers) {
  const CandidateSpace space(PaperishConfigs());
  // A non-member drawn from the universe still gets an exact mask, so
  // boundary configurations (the initial design) can join mask-keyed
  // lookups.
  const Configuration boundary({IndexDef({1})});
  EXPECT_FALSE(space.IdOf(boundary).has_value());
  uint64_t expected = 0;
  for (size_t bit = 0; bit < space.num_indexes(); ++bit) {
    if (space.universe()[bit] == IndexDef({1})) expected = uint64_t{1} << bit;
  }
  EXPECT_EQ(space.MaskOf(boundary), expected);

  // An index outside the universe cannot be a bitmask; the fallback is
  // a fingerprint, which must not collide with any member mask here.
  const Configuration alien({IndexDef({0, 1, 2, 3})});
  const uint64_t alien_mask = space.MaskOf(alien);
  for (size_t id = 0; id < space.size(); ++id) {
    EXPECT_NE(alien_mask, space.mask(id));
  }
}

TEST(CandidateSpaceTest, WideUniverseDegradesToFingerprints) {
  // 65 distinct single-column indexes push the universe past 64 bits.
  std::vector<Configuration> configs;
  for (ColumnId col = 0; col < 65; ++col) {
    configs.push_back(Configuration({IndexDef({col})}));
  }
  const CandidateSpace space(configs);
  EXPECT_EQ(space.num_indexes(), 65u);
  EXPECT_FALSE(space.exact_masks());
  // Fingerprint masks still distinguish these members, and IdOf still
  // resolves through the equality check.
  std::set<uint64_t> seen;
  for (size_t id = 0; id < space.size(); ++id) {
    EXPECT_TRUE(seen.insert(space.mask(id)).second);
    EXPECT_EQ(space.IdOf(configs[id]), static_cast<ConfigId>(id));
  }
}

TEST(CandidateSpaceTest, FingerprintSeparatesSpacesUniverseFingerprintDoesNot) {
  const std::vector<Configuration> all = PaperishConfigs();
  const CandidateSpace whole(all);
  // Dropping the last member removes indexes {1} and {3} from the
  // universe; reordering members keeps the universe bit-for-bit.
  const CandidateSpace subset(
      std::vector<Configuration>(all.begin(), all.end() - 1));
  std::vector<Configuration> reordered = all;
  std::swap(reordered[1], reordered[2]);
  const CandidateSpace shuffled(reordered);

  // Same universe, different pinned order: shared cache bit layout,
  // distinct space identity.
  EXPECT_EQ(shuffled.universe_fingerprint(), whole.universe_fingerprint());
  EXPECT_NE(shuffled.fingerprint(), whole.fingerprint());
  EXPECT_NE(shuffled, whole);

  // Different universe: both identities change.
  EXPECT_NE(subset.universe_fingerprint(), whole.universe_fingerprint());
  EXPECT_NE(subset.fingerprint(), whole.fingerprint());
}

TEST(CandidateSpaceTest, PrefixKeepsOrderAndRederivesUniverse) {
  const std::vector<Configuration> all = PaperishConfigs();
  const CandidateSpace space(all);
  const CandidateSpace head = space.Prefix(3);
  ASSERT_EQ(head.size(), 3u);
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(head[i], all[i]);
  // The survivors only mention columns 0 and 2: the universe shrank,
  // so masks stay minimal and the cache bit layout changed with it.
  EXPECT_EQ(head.num_indexes(), 2u);
  EXPECT_NE(head.universe_fingerprint(), space.universe_fingerprint());

  EXPECT_EQ(space.Prefix(all.size() + 7), space);
  EXPECT_TRUE(space.Prefix(0).empty());
}

TEST(CandidateSpaceTest, ImplicitPromotionFromVectorAndBracedList) {
  // The API-boundary ergonomics the redesign preserves: a plain vector
  // (or braced list) converts wherever a CandidateSpace is expected.
  const auto take = [](const CandidateSpace& space) { return space.size(); };
  const std::vector<Configuration> vec = PaperishConfigs();
  EXPECT_EQ(take(vec), vec.size());
  EXPECT_EQ(take({Configuration::Empty(), Configuration({IndexDef({0})})}),
            2u);
}

}  // namespace
}  // namespace cdpd
