#include "advisor/config_enumeration.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace cdpd {
namespace {

class ConfigEnumTest : public ::testing::Test {
 protected:
  Schema schema_ = MakePaperSchema();
  std::vector<IndexDef> candidates_ = MakePaperCandidateIndexes(schema_);
};

TEST_F(ConfigEnumTest, PaperSpaceHasSevenConfigurations) {
  ConfigEnumOptions options;
  options.max_indexes_per_config = 1;
  options.num_rows = 2'500'000;
  auto configs = EnumerateConfigurations(candidates_, options);
  ASSERT_TRUE(configs.ok());
  // Empty + one per candidate index = 7, as in §6.1.
  EXPECT_EQ(configs->size(), 7u);
  EXPECT_TRUE(std::any_of(configs->begin(), configs->end(),
                          [](const Configuration& c) { return c.empty(); }));
}

TEST_F(ConfigEnumTest, FullSubsetSpaceIsTwoToTheM) {
  ConfigEnumOptions options;
  options.max_indexes_per_config = 6;
  options.num_rows = 1000;
  auto configs = EnumerateConfigurations(candidates_, options);
  ASSERT_TRUE(configs.ok());
  EXPECT_EQ(configs->size(), 64u);  // 2^6.
}

TEST_F(ConfigEnumTest, MaxIndexesLimitsSubsetSize) {
  ConfigEnumOptions options;
  options.max_indexes_per_config = 2;
  options.num_rows = 1000;
  auto configs = EnumerateConfigurations(candidates_, options);
  ASSERT_TRUE(configs.ok());
  // 1 + 6 + C(6,2) = 22.
  EXPECT_EQ(configs->size(), 22u);
  for (const Configuration& c : *configs) {
    EXPECT_LE(c.num_indexes(), 2);
  }
}

TEST_F(ConfigEnumTest, SpaceBoundPrunesLargeConfigurations) {
  ConfigEnumOptions options;
  options.max_indexes_per_config = 6;
  options.num_rows = 1'000'000;
  // Bound that admits single one-column indexes but not two-column
  // ones or multi-index sets.
  options.space_bound_pages = IndexDef({0}).SizePages(1'000'000) + 1;
  auto configs = EnumerateConfigurations(candidates_, options);
  ASSERT_TRUE(configs.ok());
  for (const Configuration& c : *configs) {
    EXPECT_LE(c.SizePages(1'000'000), options.space_bound_pages);
  }
  // Empty + the four single-column indexes.
  EXPECT_EQ(configs->size(), 5u);
}

TEST_F(ConfigEnumTest, EmptyConfigurationAlwaysIncluded) {
  ConfigEnumOptions options;
  options.max_indexes_per_config = 0;
  options.num_rows = 1000;
  auto configs = EnumerateConfigurations(candidates_, options);
  ASSERT_TRUE(configs.ok());
  EXPECT_EQ(configs->size(), 1u);
  EXPECT_TRUE(configs->front().empty());
}

TEST_F(ConfigEnumTest, NoCandidatesYieldsOnlyEmpty) {
  ConfigEnumOptions options;
  options.num_rows = 1000;
  auto configs = EnumerateConfigurations({}, options);
  ASSERT_TRUE(configs.ok());
  EXPECT_EQ(configs->size(), 1u);
}

TEST_F(ConfigEnumTest, DuplicateCandidatesDoNotDuplicateConfigs) {
  ConfigEnumOptions options;
  options.max_indexes_per_config = 2;
  options.num_rows = 1000;
  std::vector<IndexDef> dup = {IndexDef({0}), IndexDef({0})};
  auto configs = EnumerateConfigurations(dup, options);
  ASSERT_TRUE(configs.ok());
  EXPECT_EQ(configs->size(), 2u);  // {} and {I(a)}.
}

TEST_F(ConfigEnumTest, ExplosionGuard) {
  ConfigEnumOptions options;
  options.max_indexes_per_config = 6;
  options.num_rows = 1000;
  options.max_configurations = 10;
  EXPECT_EQ(EnumerateConfigurations(candidates_, options).status().code(),
            StatusCode::kResourceExhausted);
}

TEST_F(ConfigEnumTest, NegativeMaxIndexesRejected) {
  ConfigEnumOptions options;
  options.max_indexes_per_config = -1;
  EXPECT_EQ(EnumerateConfigurations(candidates_, options).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace cdpd
