file(REMOVE_RECURSE
  "CMakeFiles/storage_index_test.dir/index/btree_test.cc.o"
  "CMakeFiles/storage_index_test.dir/index/btree_test.cc.o.d"
  "CMakeFiles/storage_index_test.dir/index/index_builder_test.cc.o"
  "CMakeFiles/storage_index_test.dir/index/index_builder_test.cc.o.d"
  "CMakeFiles/storage_index_test.dir/index/index_def_test.cc.o"
  "CMakeFiles/storage_index_test.dir/index/index_def_test.cc.o.d"
  "CMakeFiles/storage_index_test.dir/storage/page_test.cc.o"
  "CMakeFiles/storage_index_test.dir/storage/page_test.cc.o.d"
  "CMakeFiles/storage_index_test.dir/storage/schema_test.cc.o"
  "CMakeFiles/storage_index_test.dir/storage/schema_test.cc.o.d"
  "CMakeFiles/storage_index_test.dir/storage/table_test.cc.o"
  "CMakeFiles/storage_index_test.dir/storage/table_test.cc.o.d"
  "storage_index_test"
  "storage_index_test.pdb"
  "storage_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
