
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cost/calibration_test.cc" "tests/CMakeFiles/engine_cost_test.dir/cost/calibration_test.cc.o" "gcc" "tests/CMakeFiles/engine_cost_test.dir/cost/calibration_test.cc.o.d"
  "/root/repo/tests/cost/cost_model_test.cc" "tests/CMakeFiles/engine_cost_test.dir/cost/cost_model_test.cc.o" "gcc" "tests/CMakeFiles/engine_cost_test.dir/cost/cost_model_test.cc.o.d"
  "/root/repo/tests/cost/table_stats_test.cc" "tests/CMakeFiles/engine_cost_test.dir/cost/table_stats_test.cc.o" "gcc" "tests/CMakeFiles/engine_cost_test.dir/cost/table_stats_test.cc.o.d"
  "/root/repo/tests/cost/what_if_test.cc" "tests/CMakeFiles/engine_cost_test.dir/cost/what_if_test.cc.o" "gcc" "tests/CMakeFiles/engine_cost_test.dir/cost/what_if_test.cc.o.d"
  "/root/repo/tests/engine/database_test.cc" "tests/CMakeFiles/engine_cost_test.dir/engine/database_test.cc.o" "gcc" "tests/CMakeFiles/engine_cost_test.dir/engine/database_test.cc.o.d"
  "/root/repo/tests/engine/executor_test.cc" "tests/CMakeFiles/engine_cost_test.dir/engine/executor_test.cc.o" "gcc" "tests/CMakeFiles/engine_cost_test.dir/engine/executor_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cdpd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
