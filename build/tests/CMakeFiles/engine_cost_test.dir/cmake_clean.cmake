file(REMOVE_RECURSE
  "CMakeFiles/engine_cost_test.dir/cost/calibration_test.cc.o"
  "CMakeFiles/engine_cost_test.dir/cost/calibration_test.cc.o.d"
  "CMakeFiles/engine_cost_test.dir/cost/cost_model_test.cc.o"
  "CMakeFiles/engine_cost_test.dir/cost/cost_model_test.cc.o.d"
  "CMakeFiles/engine_cost_test.dir/cost/table_stats_test.cc.o"
  "CMakeFiles/engine_cost_test.dir/cost/table_stats_test.cc.o.d"
  "CMakeFiles/engine_cost_test.dir/cost/what_if_test.cc.o"
  "CMakeFiles/engine_cost_test.dir/cost/what_if_test.cc.o.d"
  "CMakeFiles/engine_cost_test.dir/engine/database_test.cc.o"
  "CMakeFiles/engine_cost_test.dir/engine/database_test.cc.o.d"
  "CMakeFiles/engine_cost_test.dir/engine/executor_test.cc.o"
  "CMakeFiles/engine_cost_test.dir/engine/executor_test.cc.o.d"
  "engine_cost_test"
  "engine_cost_test.pdb"
  "engine_cost_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_cost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
