file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/advisor_test.cc.o"
  "CMakeFiles/core_test.dir/core/advisor_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/brute_force_test.cc.o"
  "CMakeFiles/core_test.dir/core/brute_force_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/design_merging_test.cc.o"
  "CMakeFiles/core_test.dir/core/design_merging_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/design_problem_test.cc.o"
  "CMakeFiles/core_test.dir/core/design_problem_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/greedy_seq_test.cc.o"
  "CMakeFiles/core_test.dir/core/greedy_seq_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/hybrid_optimizer_test.cc.o"
  "CMakeFiles/core_test.dir/core/hybrid_optimizer_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/k_aware_graph_test.cc.o"
  "CMakeFiles/core_test.dir/core/k_aware_graph_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/k_selection_test.cc.o"
  "CMakeFiles/core_test.dir/core/k_selection_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/online_tuner_test.cc.o"
  "CMakeFiles/core_test.dir/core/online_tuner_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/path_ranking_test.cc.o"
  "CMakeFiles/core_test.dir/core/path_ranking_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/sequence_graph_test.cc.o"
  "CMakeFiles/core_test.dir/core/sequence_graph_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/unconstrained_optimizer_test.cc.o"
  "CMakeFiles/core_test.dir/core/unconstrained_optimizer_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/validator_test.cc.o"
  "CMakeFiles/core_test.dir/core/validator_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
