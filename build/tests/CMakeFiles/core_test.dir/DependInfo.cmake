
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/advisor_test.cc" "tests/CMakeFiles/core_test.dir/core/advisor_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/advisor_test.cc.o.d"
  "/root/repo/tests/core/brute_force_test.cc" "tests/CMakeFiles/core_test.dir/core/brute_force_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/brute_force_test.cc.o.d"
  "/root/repo/tests/core/design_merging_test.cc" "tests/CMakeFiles/core_test.dir/core/design_merging_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/design_merging_test.cc.o.d"
  "/root/repo/tests/core/design_problem_test.cc" "tests/CMakeFiles/core_test.dir/core/design_problem_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/design_problem_test.cc.o.d"
  "/root/repo/tests/core/greedy_seq_test.cc" "tests/CMakeFiles/core_test.dir/core/greedy_seq_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/greedy_seq_test.cc.o.d"
  "/root/repo/tests/core/hybrid_optimizer_test.cc" "tests/CMakeFiles/core_test.dir/core/hybrid_optimizer_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/hybrid_optimizer_test.cc.o.d"
  "/root/repo/tests/core/k_aware_graph_test.cc" "tests/CMakeFiles/core_test.dir/core/k_aware_graph_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/k_aware_graph_test.cc.o.d"
  "/root/repo/tests/core/k_selection_test.cc" "tests/CMakeFiles/core_test.dir/core/k_selection_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/k_selection_test.cc.o.d"
  "/root/repo/tests/core/online_tuner_test.cc" "tests/CMakeFiles/core_test.dir/core/online_tuner_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/online_tuner_test.cc.o.d"
  "/root/repo/tests/core/path_ranking_test.cc" "tests/CMakeFiles/core_test.dir/core/path_ranking_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/path_ranking_test.cc.o.d"
  "/root/repo/tests/core/sequence_graph_test.cc" "tests/CMakeFiles/core_test.dir/core/sequence_graph_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/sequence_graph_test.cc.o.d"
  "/root/repo/tests/core/unconstrained_optimizer_test.cc" "tests/CMakeFiles/core_test.dir/core/unconstrained_optimizer_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/unconstrained_optimizer_test.cc.o.d"
  "/root/repo/tests/core/validator_test.cc" "tests/CMakeFiles/core_test.dir/core/validator_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/validator_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cdpd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
