file(REMOVE_RECURSE
  "CMakeFiles/catalog_sql_test.dir/catalog/catalog_test.cc.o"
  "CMakeFiles/catalog_sql_test.dir/catalog/catalog_test.cc.o.d"
  "CMakeFiles/catalog_sql_test.dir/catalog/configuration_test.cc.o"
  "CMakeFiles/catalog_sql_test.dir/catalog/configuration_test.cc.o.d"
  "CMakeFiles/catalog_sql_test.dir/sql/binder_test.cc.o"
  "CMakeFiles/catalog_sql_test.dir/sql/binder_test.cc.o.d"
  "CMakeFiles/catalog_sql_test.dir/sql/lexer_test.cc.o"
  "CMakeFiles/catalog_sql_test.dir/sql/lexer_test.cc.o.d"
  "CMakeFiles/catalog_sql_test.dir/sql/parser_test.cc.o"
  "CMakeFiles/catalog_sql_test.dir/sql/parser_test.cc.o.d"
  "catalog_sql_test"
  "catalog_sql_test.pdb"
  "catalog_sql_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalog_sql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
