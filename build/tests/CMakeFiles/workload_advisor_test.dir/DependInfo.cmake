
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/advisor/candidate_generation_test.cc" "tests/CMakeFiles/workload_advisor_test.dir/advisor/candidate_generation_test.cc.o" "gcc" "tests/CMakeFiles/workload_advisor_test.dir/advisor/candidate_generation_test.cc.o.d"
  "/root/repo/tests/advisor/config_enumeration_test.cc" "tests/CMakeFiles/workload_advisor_test.dir/advisor/config_enumeration_test.cc.o" "gcc" "tests/CMakeFiles/workload_advisor_test.dir/advisor/config_enumeration_test.cc.o.d"
  "/root/repo/tests/workload/adaptive_segmenter_test.cc" "tests/CMakeFiles/workload_advisor_test.dir/workload/adaptive_segmenter_test.cc.o" "gcc" "tests/CMakeFiles/workload_advisor_test.dir/workload/adaptive_segmenter_test.cc.o.d"
  "/root/repo/tests/workload/generator_test.cc" "tests/CMakeFiles/workload_advisor_test.dir/workload/generator_test.cc.o" "gcc" "tests/CMakeFiles/workload_advisor_test.dir/workload/generator_test.cc.o.d"
  "/root/repo/tests/workload/query_mix_test.cc" "tests/CMakeFiles/workload_advisor_test.dir/workload/query_mix_test.cc.o" "gcc" "tests/CMakeFiles/workload_advisor_test.dir/workload/query_mix_test.cc.o.d"
  "/root/repo/tests/workload/shift_detector_test.cc" "tests/CMakeFiles/workload_advisor_test.dir/workload/shift_detector_test.cc.o" "gcc" "tests/CMakeFiles/workload_advisor_test.dir/workload/shift_detector_test.cc.o.d"
  "/root/repo/tests/workload/standard_workloads_test.cc" "tests/CMakeFiles/workload_advisor_test.dir/workload/standard_workloads_test.cc.o" "gcc" "tests/CMakeFiles/workload_advisor_test.dir/workload/standard_workloads_test.cc.o.d"
  "/root/repo/tests/workload/trace_io_test.cc" "tests/CMakeFiles/workload_advisor_test.dir/workload/trace_io_test.cc.o" "gcc" "tests/CMakeFiles/workload_advisor_test.dir/workload/trace_io_test.cc.o.d"
  "/root/repo/tests/workload/workload_test.cc" "tests/CMakeFiles/workload_advisor_test.dir/workload/workload_test.cc.o" "gcc" "tests/CMakeFiles/workload_advisor_test.dir/workload/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cdpd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
