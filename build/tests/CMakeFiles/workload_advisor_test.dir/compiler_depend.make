# Empty compiler generated dependencies file for workload_advisor_test.
# This may be replaced when dependencies are built.
