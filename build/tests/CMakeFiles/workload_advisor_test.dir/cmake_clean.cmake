file(REMOVE_RECURSE
  "CMakeFiles/workload_advisor_test.dir/advisor/candidate_generation_test.cc.o"
  "CMakeFiles/workload_advisor_test.dir/advisor/candidate_generation_test.cc.o.d"
  "CMakeFiles/workload_advisor_test.dir/advisor/config_enumeration_test.cc.o"
  "CMakeFiles/workload_advisor_test.dir/advisor/config_enumeration_test.cc.o.d"
  "CMakeFiles/workload_advisor_test.dir/workload/adaptive_segmenter_test.cc.o"
  "CMakeFiles/workload_advisor_test.dir/workload/adaptive_segmenter_test.cc.o.d"
  "CMakeFiles/workload_advisor_test.dir/workload/generator_test.cc.o"
  "CMakeFiles/workload_advisor_test.dir/workload/generator_test.cc.o.d"
  "CMakeFiles/workload_advisor_test.dir/workload/query_mix_test.cc.o"
  "CMakeFiles/workload_advisor_test.dir/workload/query_mix_test.cc.o.d"
  "CMakeFiles/workload_advisor_test.dir/workload/shift_detector_test.cc.o"
  "CMakeFiles/workload_advisor_test.dir/workload/shift_detector_test.cc.o.d"
  "CMakeFiles/workload_advisor_test.dir/workload/standard_workloads_test.cc.o"
  "CMakeFiles/workload_advisor_test.dir/workload/standard_workloads_test.cc.o.d"
  "CMakeFiles/workload_advisor_test.dir/workload/trace_io_test.cc.o"
  "CMakeFiles/workload_advisor_test.dir/workload/trace_io_test.cc.o.d"
  "CMakeFiles/workload_advisor_test.dir/workload/workload_test.cc.o"
  "CMakeFiles/workload_advisor_test.dir/workload/workload_test.cc.o.d"
  "workload_advisor_test"
  "workload_advisor_test.pdb"
  "workload_advisor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_advisor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
