file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_fig2_graphs.dir/bench_fig1_fig2_graphs.cc.o"
  "CMakeFiles/bench_fig1_fig2_graphs.dir/bench_fig1_fig2_graphs.cc.o.d"
  "bench_fig1_fig2_graphs"
  "bench_fig1_fig2_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_fig2_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
