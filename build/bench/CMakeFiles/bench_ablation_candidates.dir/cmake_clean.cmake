file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_candidates.dir/bench_ablation_candidates.cc.o"
  "CMakeFiles/bench_ablation_candidates.dir/bench_ablation_candidates.cc.o.d"
  "bench_ablation_candidates"
  "bench_ablation_candidates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_candidates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
