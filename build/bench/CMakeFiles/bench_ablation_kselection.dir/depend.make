# Empty dependencies file for bench_ablation_kselection.
# This may be replaced when dependencies are built.
