file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_kselection.dir/bench_ablation_kselection.cc.o"
  "CMakeFiles/bench_ablation_kselection.dir/bench_ablation_kselection.cc.o.d"
  "bench_ablation_kselection"
  "bench_ablation_kselection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_kselection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
