# Empty dependencies file for bench_table1_query_mixes.
# This may be replaced when dependencies are built.
