file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_query_mixes.dir/bench_table1_query_mixes.cc.o"
  "CMakeFiles/bench_table1_query_mixes.dir/bench_table1_query_mixes.cc.o.d"
  "bench_table1_query_mixes"
  "bench_table1_query_mixes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_query_mixes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
