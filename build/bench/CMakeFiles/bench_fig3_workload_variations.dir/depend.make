# Empty dependencies file for bench_fig3_workload_variations.
# This may be replaced when dependencies are built.
