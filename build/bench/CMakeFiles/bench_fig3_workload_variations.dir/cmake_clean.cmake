file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_workload_variations.dir/bench_fig3_workload_variations.cc.o"
  "CMakeFiles/bench_fig3_workload_variations.dir/bench_fig3_workload_variations.cc.o.d"
  "bench_fig3_workload_variations"
  "bench_fig3_workload_variations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_workload_variations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
