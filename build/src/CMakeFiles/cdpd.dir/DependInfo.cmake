
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/advisor/candidate_generation.cc" "src/CMakeFiles/cdpd.dir/advisor/candidate_generation.cc.o" "gcc" "src/CMakeFiles/cdpd.dir/advisor/candidate_generation.cc.o.d"
  "/root/repo/src/advisor/config_enumeration.cc" "src/CMakeFiles/cdpd.dir/advisor/config_enumeration.cc.o" "gcc" "src/CMakeFiles/cdpd.dir/advisor/config_enumeration.cc.o.d"
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/cdpd.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/cdpd.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/catalog/configuration.cc" "src/CMakeFiles/cdpd.dir/catalog/configuration.cc.o" "gcc" "src/CMakeFiles/cdpd.dir/catalog/configuration.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/cdpd.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/cdpd.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/cdpd.dir/common/status.cc.o" "gcc" "src/CMakeFiles/cdpd.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/cdpd.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/cdpd.dir/common/string_util.cc.o.d"
  "/root/repo/src/core/advisor.cc" "src/CMakeFiles/cdpd.dir/core/advisor.cc.o" "gcc" "src/CMakeFiles/cdpd.dir/core/advisor.cc.o.d"
  "/root/repo/src/core/brute_force.cc" "src/CMakeFiles/cdpd.dir/core/brute_force.cc.o" "gcc" "src/CMakeFiles/cdpd.dir/core/brute_force.cc.o.d"
  "/root/repo/src/core/design_merging.cc" "src/CMakeFiles/cdpd.dir/core/design_merging.cc.o" "gcc" "src/CMakeFiles/cdpd.dir/core/design_merging.cc.o.d"
  "/root/repo/src/core/design_problem.cc" "src/CMakeFiles/cdpd.dir/core/design_problem.cc.o" "gcc" "src/CMakeFiles/cdpd.dir/core/design_problem.cc.o.d"
  "/root/repo/src/core/greedy_seq.cc" "src/CMakeFiles/cdpd.dir/core/greedy_seq.cc.o" "gcc" "src/CMakeFiles/cdpd.dir/core/greedy_seq.cc.o.d"
  "/root/repo/src/core/hybrid_optimizer.cc" "src/CMakeFiles/cdpd.dir/core/hybrid_optimizer.cc.o" "gcc" "src/CMakeFiles/cdpd.dir/core/hybrid_optimizer.cc.o.d"
  "/root/repo/src/core/k_aware_graph.cc" "src/CMakeFiles/cdpd.dir/core/k_aware_graph.cc.o" "gcc" "src/CMakeFiles/cdpd.dir/core/k_aware_graph.cc.o.d"
  "/root/repo/src/core/k_selection.cc" "src/CMakeFiles/cdpd.dir/core/k_selection.cc.o" "gcc" "src/CMakeFiles/cdpd.dir/core/k_selection.cc.o.d"
  "/root/repo/src/core/online_tuner.cc" "src/CMakeFiles/cdpd.dir/core/online_tuner.cc.o" "gcc" "src/CMakeFiles/cdpd.dir/core/online_tuner.cc.o.d"
  "/root/repo/src/core/path_ranking.cc" "src/CMakeFiles/cdpd.dir/core/path_ranking.cc.o" "gcc" "src/CMakeFiles/cdpd.dir/core/path_ranking.cc.o.d"
  "/root/repo/src/core/sequence_graph.cc" "src/CMakeFiles/cdpd.dir/core/sequence_graph.cc.o" "gcc" "src/CMakeFiles/cdpd.dir/core/sequence_graph.cc.o.d"
  "/root/repo/src/core/unconstrained_optimizer.cc" "src/CMakeFiles/cdpd.dir/core/unconstrained_optimizer.cc.o" "gcc" "src/CMakeFiles/cdpd.dir/core/unconstrained_optimizer.cc.o.d"
  "/root/repo/src/core/validator.cc" "src/CMakeFiles/cdpd.dir/core/validator.cc.o" "gcc" "src/CMakeFiles/cdpd.dir/core/validator.cc.o.d"
  "/root/repo/src/cost/calibration.cc" "src/CMakeFiles/cdpd.dir/cost/calibration.cc.o" "gcc" "src/CMakeFiles/cdpd.dir/cost/calibration.cc.o.d"
  "/root/repo/src/cost/cost_model.cc" "src/CMakeFiles/cdpd.dir/cost/cost_model.cc.o" "gcc" "src/CMakeFiles/cdpd.dir/cost/cost_model.cc.o.d"
  "/root/repo/src/cost/table_stats.cc" "src/CMakeFiles/cdpd.dir/cost/table_stats.cc.o" "gcc" "src/CMakeFiles/cdpd.dir/cost/table_stats.cc.o.d"
  "/root/repo/src/cost/what_if.cc" "src/CMakeFiles/cdpd.dir/cost/what_if.cc.o" "gcc" "src/CMakeFiles/cdpd.dir/cost/what_if.cc.o.d"
  "/root/repo/src/engine/database.cc" "src/CMakeFiles/cdpd.dir/engine/database.cc.o" "gcc" "src/CMakeFiles/cdpd.dir/engine/database.cc.o.d"
  "/root/repo/src/engine/executor.cc" "src/CMakeFiles/cdpd.dir/engine/executor.cc.o" "gcc" "src/CMakeFiles/cdpd.dir/engine/executor.cc.o.d"
  "/root/repo/src/index/btree.cc" "src/CMakeFiles/cdpd.dir/index/btree.cc.o" "gcc" "src/CMakeFiles/cdpd.dir/index/btree.cc.o.d"
  "/root/repo/src/index/index_builder.cc" "src/CMakeFiles/cdpd.dir/index/index_builder.cc.o" "gcc" "src/CMakeFiles/cdpd.dir/index/index_builder.cc.o.d"
  "/root/repo/src/index/index_def.cc" "src/CMakeFiles/cdpd.dir/index/index_def.cc.o" "gcc" "src/CMakeFiles/cdpd.dir/index/index_def.cc.o.d"
  "/root/repo/src/sql/ast.cc" "src/CMakeFiles/cdpd.dir/sql/ast.cc.o" "gcc" "src/CMakeFiles/cdpd.dir/sql/ast.cc.o.d"
  "/root/repo/src/sql/binder.cc" "src/CMakeFiles/cdpd.dir/sql/binder.cc.o" "gcc" "src/CMakeFiles/cdpd.dir/sql/binder.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/cdpd.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/cdpd.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/cdpd.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/cdpd.dir/sql/parser.cc.o.d"
  "/root/repo/src/storage/schema.cc" "src/CMakeFiles/cdpd.dir/storage/schema.cc.o" "gcc" "src/CMakeFiles/cdpd.dir/storage/schema.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/cdpd.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/cdpd.dir/storage/table.cc.o.d"
  "/root/repo/src/workload/adaptive_segmenter.cc" "src/CMakeFiles/cdpd.dir/workload/adaptive_segmenter.cc.o" "gcc" "src/CMakeFiles/cdpd.dir/workload/adaptive_segmenter.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/cdpd.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/cdpd.dir/workload/generator.cc.o.d"
  "/root/repo/src/workload/query_mix.cc" "src/CMakeFiles/cdpd.dir/workload/query_mix.cc.o" "gcc" "src/CMakeFiles/cdpd.dir/workload/query_mix.cc.o.d"
  "/root/repo/src/workload/shift_detector.cc" "src/CMakeFiles/cdpd.dir/workload/shift_detector.cc.o" "gcc" "src/CMakeFiles/cdpd.dir/workload/shift_detector.cc.o.d"
  "/root/repo/src/workload/standard_workloads.cc" "src/CMakeFiles/cdpd.dir/workload/standard_workloads.cc.o" "gcc" "src/CMakeFiles/cdpd.dir/workload/standard_workloads.cc.o.d"
  "/root/repo/src/workload/statement.cc" "src/CMakeFiles/cdpd.dir/workload/statement.cc.o" "gcc" "src/CMakeFiles/cdpd.dir/workload/statement.cc.o.d"
  "/root/repo/src/workload/trace_io.cc" "src/CMakeFiles/cdpd.dir/workload/trace_io.cc.o" "gcc" "src/CMakeFiles/cdpd.dir/workload/trace_io.cc.o.d"
  "/root/repo/src/workload/workload.cc" "src/CMakeFiles/cdpd.dir/workload/workload.cc.o" "gcc" "src/CMakeFiles/cdpd.dir/workload/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
