# Empty dependencies file for cdpd.
# This may be replaced when dependencies are built.
