file(REMOVE_RECURSE
  "libcdpd.a"
)
