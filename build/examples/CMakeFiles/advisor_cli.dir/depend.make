# Empty dependencies file for advisor_cli.
# This may be replaced when dependencies are built.
