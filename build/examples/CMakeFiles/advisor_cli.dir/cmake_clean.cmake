file(REMOVE_RECURSE
  "CMakeFiles/advisor_cli.dir/advisor_cli.cpp.o"
  "CMakeFiles/advisor_cli.dir/advisor_cli.cpp.o.d"
  "advisor_cli"
  "advisor_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advisor_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
