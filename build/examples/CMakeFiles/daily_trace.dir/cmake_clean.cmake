file(REMOVE_RECURSE
  "CMakeFiles/daily_trace.dir/daily_trace.cpp.o"
  "CMakeFiles/daily_trace.dir/daily_trace.cpp.o.d"
  "daily_trace"
  "daily_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daily_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
