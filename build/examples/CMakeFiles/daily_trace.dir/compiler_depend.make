# Empty compiler generated dependencies file for daily_trace.
# This may be replaced when dependencies are built.
