file(REMOVE_RECURSE
  "CMakeFiles/robustness_lab.dir/robustness_lab.cpp.o"
  "CMakeFiles/robustness_lab.dir/robustness_lab.cpp.o.d"
  "robustness_lab"
  "robustness_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robustness_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
