# Empty dependencies file for robustness_lab.
# This may be replaced when dependencies are built.
